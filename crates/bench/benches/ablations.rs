//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! model class (BN vs Markov vs independent) and BN in-degree bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eip_bayes::LearnOptions;
use eip_netsim::dataset;
use entropy_ip::baseline::{encoded_dataset, generate_with, IndependentModel, MarkovModel};
use entropy_ip::{EntropyIp, Options};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Sampling throughput of the three model classes on the same
/// dictionaries.
fn bench_model_classes(c: &mut Criterion) {
    let set = dataset("S1").unwrap().population_sized(2_000, 1);
    let model = EntropyIp::new().analyze(&set).unwrap();
    let data = encoded_dataset(&model, &set);
    let ind = IndependentModel::fit(&data);
    let mm = MarkovModel::fit(&data).expect("non-empty training data");

    let mut g = c.benchmark_group("sample_5k_rows");
    g.bench_function("bayes_net", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            generate_with(
                &model,
                |r| eip_bayes::sample_row(model.bn(), r),
                5_000,
                40_000,
                &mut rng,
            )
        });
    });
    g.bench_function("markov", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| generate_with(&model, |r| mm.sample_row(r), 5_000, 40_000, &mut rng));
    });
    g.bench_function("independent", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| generate_with(&model, |r| ind.sample_row(r), 5_000, 40_000, &mut rng));
    });
    g.finish();
}

/// Structure-learning cost as the in-degree bound grows (the exact
/// search is exponential in the bound; Dojer pruning keeps the
/// practical cost flat for structured data).
fn bench_in_degree(c: &mut Criterion) {
    let set = dataset("S1").unwrap().population_sized(2_000, 1);
    let mut g = c.benchmark_group("learn_in_degree");
    g.sample_size(10);
    for max_parents in [1usize, 2, 3] {
        let opts = Options {
            learning: LearnOptions {
                max_parents,
                ..Default::default()
            },
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(max_parents), &opts, |b, o| {
            b.iter(|| EntropyIp::with_options(o.clone()).analyze(&set).unwrap());
        });
    }
    g.finish();
}

/// Segmentation parameter ablation: paper thresholds vs a plain
/// entropy-difference rule (the alternative §4.5 says performed
/// worse) — here measuring cost and segment counts.
fn bench_segmentation_rules(c: &mut Criterion) {
    use eip_stats::nybble_entropy;
    use entropy_ip::{segment_entropy_profile, SegmentationOptions};
    let addrs: Vec<_> = dataset("S1")
        .unwrap()
        .population_sized(5_000, 1)
        .iter()
        .collect();
    let profile = nybble_entropy(&addrs);
    let paper = SegmentationOptions::default();
    // "Plain difference": a dense threshold ladder makes every
    // hysteresis-exceeding jump a boundary.
    let plain = SegmentationOptions {
        thresholds: (1..20).map(|i| i as f64 / 20.0).collect(),
        ..Default::default()
    };
    let mut g = c.benchmark_group("segmentation_rule");
    g.bench_function("paper_thresholds", |b| {
        b.iter(|| segment_entropy_profile(&profile, &paper));
    });
    g.bench_function("plain_difference", |b| {
        b.iter(|| segment_entropy_profile(&profile, &plain));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_model_classes,
    bench_in_degree,
    bench_segmentation_rules
);
criterion_main!(benches);
