//! Scanning-evaluation benchmarks: the Table 4 / Table 6 protocols
//! at reduced scale (train, generate, probe, account).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eip_addr::set::SplitMix64;
use eip_netsim::{dataset, evaluate_scan, Responder, TemporalPool};
use entropy_ip::{EntropyIp, Generator, Options};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One Table 4 row end to end (S3: the paper's best server case).
fn bench_table4_row(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_row");
    g.sample_size(10);
    for id in ["S3", "R1"] {
        let spec = dataset(id).unwrap();
        let observed = spec.population(1);
        g.bench_with_input(BenchmarkId::from_parameter(id), &observed, |b, obs| {
            b.iter(|| {
                let mut rng = SplitMix64::new(2);
                let (train, test) = obs.split_sample(1_000, &mut rng);
                let responder = Responder::new(obs.clone(), 0.5, 3);
                let model = EntropyIp::new().analyze(&train).unwrap();
                let mut gen_rng = StdRng::seed_from_u64(4);
                let cands = Generator::new(&model)
                    .excluding(&train)
                    .run(10_000, &mut gen_rng)
                    .candidates;
                evaluate_scan(&cands, &train, &test, &responder)
            });
        });
    }
    g.finish();
}

/// One Table 6 row: temporal prefix prediction.
fn bench_table6_row(c: &mut Criterion) {
    let mut g = c.benchmark_group("table6_row");
    g.sample_size(10);
    let spec = dataset("C5").unwrap();
    let pool = TemporalPool::new(spec.plan(), 4_000, 0.7, 9);
    g.bench_function("C5", |b| {
        b.iter(|| {
            let day0 = pool.day(0);
            let mut rng = SplitMix64::new(5);
            let (train, _) = day0.split_sample(1_000, &mut rng);
            let model = EntropyIp::with_options(Options::top64())
                .analyze(&train)
                .unwrap();
            let mut gen_rng = StdRng::seed_from_u64(6);
            let cands = Generator::new(&model).run(10_000, &mut gen_rng).candidates;
            cands.iter().filter(|&&p| day0.contains(p)).count()
        });
    });
    g.finish();
}

/// Responder probe throughput (the oracle must not be the
/// bottleneck).
fn bench_probe(c: &mut Criterion) {
    let spec = dataset("R1").unwrap();
    let active = spec.population(1);
    let responder = Responder::new(active.clone(), 0.5, 3);
    let targets: Vec<_> = active.iter().take(1_000).collect();
    c.bench_function("probe_1k", |b| {
        b.iter(|| targets.iter().filter(|&&ip| responder.ping(ip)).count());
    });
}

criterion_group!(benches, bench_table4_row, bench_table6_row, bench_probe);
criterion_main!(benches);
