//! Workspace facade for the Entropy/IP reproduction.
//!
//! Re-exports the crates so integration tests and examples can write
//! `entropy_ip_repro::...` or use the individual crates directly.

pub use eip_addr as addr;
pub use eip_bayes as bayes;
pub use eip_cluster as cluster;
pub use eip_netsim as netsim;
pub use eip_stats as stats;
pub use eip_viz as viz;
pub use entropy_ip as core;
