//! Workspace facade for the Entropy/IP reproduction.
//!
//! Re-exports the crates so integration tests and examples can write
//! `entropy_ip_repro::...` or use the individual crates directly, and
//! surfaces the staged pipeline API ([`Pipeline`], [`Config`], the
//! stage artifacts) plus the unified [`EipError`] at the top level.

pub use eip_addr as addr;
pub use eip_bayes as bayes;
pub use eip_cluster as cluster;
pub use eip_exec as exec;
pub use eip_netsim as netsim;
pub use eip_serve as serve;
pub use eip_stats as stats;
pub use eip_viz as viz;
pub use entropy_ip as core;

pub use entropy_ip::{
    Config, EipError, EntropyIp, Generator, IpModel, Mined, Pipeline, Profiled, Segmented, Trained,
};
