//! A full scanning campaign (the paper's §5.5 protocol) against a
//! simulated network, with fault injection in the responder.
//!
//! ```sh
//! cargo run --release --example scan_campaign -- R1 --candidates 50000 --probe-loss 0.1
//! ```
//!
//! Trains on 1K addresses, generates candidates, "scans" them against
//! the simulated responder (ping + rDNS), and prints the Table 4 row.

use eip_addr::set::SplitMix64;
use eip_netsim::{dataset, evaluate_scan, FaultConfig, Responder};
use entropy_ip::{Config, Generator, Pipeline};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let id = args.first().map(String::as_str).unwrap_or("R1");
    let mut candidates = 50_000usize;
    let mut probe_loss = 0.0f64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--candidates" => {
                i += 1;
                candidates = args[i].parse().expect("--candidates N");
            }
            "--probe-loss" => {
                i += 1;
                probe_loss = args[i].parse().expect("--probe-loss F");
            }
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }

    let spec = dataset(id).unwrap_or_else(|| panic!("unknown dataset {id} (try S1..S5, R1..R5)"));
    println!("network {id}: {}", spec.description);

    // Observed population and a 1K training sample.
    let observed = spec.population(7);
    let mut rng = SplitMix64::new(99);
    let (train, test) = observed.split_sample(1_000, &mut rng);
    println!(
        "observed {} addresses; training on {}",
        observed.len(),
        train.len()
    );

    // The measurement oracle also knows unobserved-but-active hosts.
    let mut extra_rng = StdRng::seed_from_u64(1234);
    let unobserved = spec
        .plan()
        .generate(spec.default_population / 2, &mut extra_rng);
    let responder = Responder::new(observed.union(&unobserved), spec.rdns_fraction, 5).with_faults(
        FaultConfig {
            probe_loss,
            echo_prefixes: vec![],
            seed: 5,
        },
    );

    // Train, generate, scan.
    let model = Pipeline::new(Config::default())
        .run(train.iter())
        .expect("non-empty training sample");
    let report = Generator::new(&model)
        .excluding(&train)
        .attempts_per_candidate(8)
        .run_seeded(candidates, 42);
    println!(
        "generated {} unique candidates ({} attempts, {} duplicates)",
        report.candidates.len(),
        report.attempts,
        report.duplicates
    );

    let outcome = evaluate_scan(&report.candidates, &train, &test, &responder);
    println!("\n--- results (one Table 4 row) ---");
    println!("test-set hits : {}", outcome.test_hits);
    println!(
        "ping hits     : {} (probe loss {probe_loss})",
        outcome.ping_hits
    );
    println!("rDNS hits     : {}", outcome.rdns_hits);
    println!(
        "overall       : {} ({:.2}%)",
        outcome.overall,
        outcome.success_rate() * 100.0
    );
    println!("new /64s      : {}", outcome.new_slash64);
    println!("probes sent   : {}", responder.probes_sent());
}
