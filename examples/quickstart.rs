//! Quickstart: analyze a small address set stage by stage, explore
//! its structure, and generate scan candidates.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Reads addresses from a file given as the first argument (one per
//! line, `#` comments allowed), or uses a bundled synthetic network
//! when no file is given.

use eip_netsim::dataset;
use eip_viz::{bn_to_dot, render_browser, render_entropy_ascii};
use entropy_ip::{Browser, Config, Generator, Pipeline};

fn main() {
    // 1. The staged pipeline with default (paper) parameters.
    let pipeline = Pipeline::new(Config::default());

    // 2. Stage 1 — streaming ingestion + entropy/ACR profile, from a
    //    file line reader or straight from the simulated S1 network.
    let profiled = match std::env::args().nth(1) {
        Some(path) => {
            let file = std::fs::File::open(&path).expect("open address file");
            pipeline
                .profile_lines(std::io::BufReader::new(file))
                .expect("profile addresses")
        }
        None => {
            println!("(no input file given; using the simulated S1 web-hosting network)\n");
            let ips = dataset("S1").unwrap().population_sized(20_000, 1);
            pipeline.profile(ips.iter()).expect("profile addresses")
        }
    };
    println!(
        "profiled {} unique addresses, H_S = {:.1}\n",
        profiled.num_addresses(),
        profiled.total_entropy()
    );

    // 3. Stage 2 — segmentation; the entropy/ACR panel (Fig. 1a).
    let segmented = profiled.segment();
    println!("{}", render_entropy_ascii(segmented.analysis(), 12));

    // 4. Stage 3 — the mined value dictionaries (Table 3).
    let mined = segmented.mine();
    println!("segment dictionaries:");
    for m in mined.mined() {
        println!(
            "  {}: {} values, most popular {}",
            m.segment.label,
            m.values.len(),
            m.values
                .first()
                .map(|v| format!("{} ({:.1}%)", v.code, v.freq * 100.0))
                .unwrap_or_default()
        );
    }

    // 5. Stage 4 — the Bayesian network (Fig. 2) as Graphviz DOT.
    let model = mined.train().expect("trainable set").into_model();
    println!(
        "\nBN dependency graph (pipe into `dot -Tsvg`):\n{}",
        bn_to_dot(model.bn(), None)
    );

    // 6. The conditional probability browser (Fig. 1b).
    let browser = Browser::new(&model);
    println!("{}", render_browser(&browser.distributions(), 0.01));

    // 7. Generate candidate targets (Section 5.5).
    let report = Generator::new(&model).run_seeded(10, 42);
    println!("10 candidate scan targets:");
    for c in &report.candidates {
        println!("  {c}");
    }
}
