//! Quickstart: analyze a small address set, explore its structure,
//! and generate scan candidates.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Reads addresses from a file given as the first argument (one per
//! line, `#` comments allowed), or uses a bundled synthetic network
//! when no file is given.

use eip_addr::AddressSet;
use eip_netsim::dataset;
use eip_viz::{bn_to_dot, render_browser, render_entropy_ascii};
use entropy_ip::{Browser, EntropyIp};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Get addresses: a file, or the simulated S1 network.
    let ips: AddressSet = match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path).expect("read address file");
            AddressSet::parse_lines(&text).expect("parse addresses")
        }
        None => {
            println!("(no input file given; using the simulated S1 web-hosting network)\n");
            dataset("S1").unwrap().population_sized(20_000, 1)
        }
    };
    println!("loaded {} unique addresses\n", ips.len());

    // 2. Run the Entropy/IP pipeline.
    let model = EntropyIp::new().analyze(&ips).expect("non-empty set");

    // 3. The entropy/ACR profile with discovered segments (Fig. 1a).
    println!("{}", render_entropy_ascii(model.analysis(), 12));

    // 4. The mined value dictionaries (Table 3).
    println!("segment dictionaries:");
    for m in model.mined() {
        println!(
            "  {}: {} values, most popular {}",
            m.segment.label,
            m.values.len(),
            m.values
                .first()
                .map(|v| format!("{} ({:.1}%)", v.code, v.freq * 100.0))
                .unwrap_or_default()
        );
    }

    // 5. The Bayesian network (Fig. 2) as Graphviz DOT.
    println!(
        "\nBN dependency graph (pipe into `dot -Tsvg`):\n{}",
        bn_to_dot(model.bn(), None)
    );

    // 6. The conditional probability browser (Fig. 1b).
    let browser = Browser::new(&model);
    println!("{}", render_browser(&browser.distributions(), 0.01));

    // 7. Generate candidate targets (Section 5.5).
    let mut rng = StdRng::seed_from_u64(42);
    let candidates = model.generate(10, 1_000, &mut rng);
    println!("10 candidate scan targets:");
    for c in candidates {
        println!("  {c}");
    }
}
