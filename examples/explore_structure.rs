//! Interactive-style structure exploration: the conditional
//! probability browser driven from the command line (Fig. 1 of the
//! paper, without the web page).
//!
//! ```sh
//! cargo run --release --example explore_structure -- C1 G=G1 E=E1
//! ```
//!
//! Each `SEGMENT=CODE` argument clicks that value in the browser; the
//! posterior distributions of all other segments update through the
//! Bayesian network (including *backwards*, into earlier segments).
//! Run without clicks to see the priors, pick a code from the output,
//! and re-run with it. Also writes `entropy.svg` and `bn.dot` for the
//! graphical views.

use eip_netsim::dataset;
use eip_viz::{bn_to_dot, render_browser, render_entropy_ascii, render_entropy_svg};
use entropy_ip::{Browser, Config, Pipeline};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let id = args.first().map(String::as_str).unwrap_or("C1");
    let spec = dataset(id).unwrap_or_else(|| panic!("unknown dataset {id}"));
    println!("network {id}: {}\n", spec.description);

    let ips = spec.population_sized(24_000, 11);
    let model = Pipeline::new(Config::default())
        .run(ips.iter())
        .expect("non-empty population");
    println!("{}", render_entropy_ascii(model.analysis(), 12));

    let mut browser = Browser::new(&model);
    for click in &args[1.min(args.len())..] {
        let Some((seg, code)) = click.split_once('=') else {
            panic!("clicks look like G=G1, got {click}");
        };
        if browser.select(seg, code) {
            println!("clicked: segment {seg} = {code}");
        } else {
            println!("no such value: {click} (run without clicks to list codes)");
        }
    }
    println!();
    println!("{}", render_browser(&browser.distributions(), 0.005));

    // Side outputs for graphical tooling.
    std::fs::write(
        "entropy.svg",
        render_entropy_svg(model.analysis(), 800, 300),
    )
    .expect("write entropy.svg");
    std::fs::write("bn.dot", bn_to_dot(model.bn(), None)).expect("write bn.dot");
    println!("wrote entropy.svg and bn.dot (render with: dot -Tsvg bn.dot > bn.svg)");
}
