//! Fault injection: how measurement artifacts distort scanning
//! results (the caveats of the paper's §5.5, made executable).
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```
//!
//! Runs the same campaign against R1 three times: a clean responder,
//! one with 30% probe loss (false negatives: "networks blocking our
//! ping requests"), and one with a prefix that echoes every probe
//! (false positives: "replying to any ping request destined to a
//! certain prefix").

use eip_addr::set::SplitMix64;
use eip_netsim::{dataset, evaluate_scan, FaultConfig, Responder};
use entropy_ip::{Config, Generator, Pipeline};

fn main() {
    let spec = dataset("R1").unwrap();
    let observed = spec.population(7);
    let mut rng = SplitMix64::new(99);
    let (train, test) = observed.split_sample(1_000, &mut rng);
    let model = Pipeline::new(Config::default())
        .run(train.iter())
        .expect("non-empty training sample");
    let candidates = Generator::new(&model)
        .excluding(&train)
        .run_seeded(30_000, 42)
        .candidates;
    println!("R1 campaign: {} candidates\n", candidates.len());
    println!(
        "{:<28} {:>8} {:>8} {:>9} {:>8}",
        "responder", "ping", "overall", "rate", "new/64"
    );

    let scenarios: [(&str, FaultConfig); 3] = [
        ("clean", FaultConfig::default()),
        (
            "30% probe loss",
            FaultConfig {
                probe_loss: 0.3,
                echo_prefixes: vec![],
                seed: 5,
            },
        ),
        (
            "echo prefix (false pos.)",
            FaultConfig {
                probe_loss: 0.0,
                echo_prefixes: vec!["2001:db8::/36".parse().unwrap()],
                seed: 5,
            },
        ),
    ];
    for (name, faults) in scenarios {
        let responder = Responder::new(observed.clone(), spec.rdns_fraction, 5).with_faults(faults);
        let o = evaluate_scan(&candidates, &train, &test, &responder);
        println!(
            "{:<28} {:>8} {:>8} {:>8.2}% {:>8}",
            name,
            o.ping_hits,
            o.overall,
            o.success_rate() * 100.0,
            o.new_slash64
        );
    }
    println!("\nProbe loss depresses ping counts (the test-set check still catches");
    println!("members); an echo prefix inflates the success rate — the paper flags");
    println!("both as limitations of any active-scanning evaluation.");
}
