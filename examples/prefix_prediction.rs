//! Client /64-prefix prediction (the paper's §5.6 / Table 6).
//!
//! ```sh
//! cargo run --release --example prefix_prediction -- C4
//! ```
//!
//! Client IIDs are pseudo-random, so guessing full addresses is
//! hopeless; instead Entropy/IP is constrained to the top 64 bits and
//! predicts *prefixes*. We train on prefixes seen "today" and test
//! against today and the following week of a churning prefix pool.

use eip_addr::set::SplitMix64;
use eip_netsim::{dataset, TemporalPool};
use entropy_ip::{Config, Generator, Pipeline};

fn main() {
    let id = std::env::args().nth(1).unwrap_or_else(|| "C4".into());
    let spec = dataset(&id).unwrap_or_else(|| panic!("unknown dataset {id} (try C1..C5)"));
    println!("network {id}: {}", spec.description);

    // A churning pool of active /64s: 70% stable core, 30% re-drawn
    // daily.
    let pool = TemporalPool::new(spec.plan(), spec.default_population / 4, 0.7, 2024);
    let day0 = pool.day(0);
    let week = pool.window(0, 7);
    println!(
        "day 0: {} active /64s; 7-day union: {}",
        day0.len(),
        week.len()
    );

    // Train a top-64-bit model on 1K prefixes from day 0, stage by
    // stage (the prefix constraint is just a pipeline Config).
    let mut rng = SplitMix64::new(17);
    let (train, _) = day0.split_sample(1_000, &mut rng);
    let model = Pipeline::new(Config::top64())
        .run(train.iter())
        .expect("non-empty prefix sample");
    println!(
        "model: {} segments over the top 64 bits, H_S = {:.1}",
        model.analysis().segments.len(),
        model.analysis().total_entropy
    );

    // Generate candidate prefixes and check them against both
    // horizons.
    let candidates = Generator::new(&model)
        .excluding(&train)
        .attempts_per_candidate(8)
        .run_seeded(50_000, 3)
        .candidates;
    let d0 = candidates.iter().filter(|&&p| day0.contains(p)).count();
    let d7 = candidates.iter().filter(|&&p| week.contains(p)).count();
    println!("\ngenerated {} candidate /64s", candidates.len());
    println!(
        "active on day 0   : {d0} ({:.2}%)",
        100.0 * d0 as f64 / candidates.len() as f64
    );
    println!(
        "active in the week: {d7} ({:.2}%)",
        100.0 * d7 as f64 / candidates.len() as f64
    );
    println!("\n(the paper predicted 12K-150K prefixes per network at 1-20% rates; a");
    println!("larger 7-day count than day-0 count indicates a dynamic assignment pool)");
}
