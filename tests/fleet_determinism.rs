//! Tier-1 multi-job determinism suite: concurrent pipeline jobs on
//! one shared work-stealing pool must produce artifacts byte-identical
//! to a solo serial run — at every pool size.
//!
//! This is the fleet-scale extension of `determinism.rs`: there the
//! invariant is "worker count is invisible"; here it is "the shared
//! execution venue is invisible". Shard geometry stays keyed by the
//! configured parallelism and every hot path draws counter-based
//! per-index randomness, so neither which thread runs a shard, nor
//! which job stole it, nor how many jobs race on the pool can reach
//! the output. The suite runs 2–4 concurrent jobs over distinct
//! networks at pool sizes {1, 2, 7, 8} — serial venue, smallest
//! genuine pool, and an uneven/even pair both above this machine's
//! likely core count — and byte-compares the exported model and the
//! candidate stream of every job against solo serial oracles.

use std::sync::Arc;
use std::thread;

use eip_exec::pool::StealPool;
use eip_exec::Scheduler;
use eip_netsim::dataset;
use entropy_ip::{profile, Config, Generator, Pipeline};

const POOLS: [usize; 4] = [1, 2, 7, 8];
const SEED: u64 = 20160317;
const POP: usize = 3_000;
const CANDIDATES: usize = 1_200;

/// One network end to end on an optional shared pool: the exported
/// model plus the candidate batch, the two byte-level artifacts a
/// fleet job ships.
fn run_one(id: &str, jobs: usize, pool: Option<Arc<StealPool>>) -> (String, Vec<eip_addr::Ip6>) {
    let set = dataset(id).unwrap().population_sized(POP, SEED);
    let mut config = Config::default().with_parallelism(jobs);
    if let Some(pool) = &pool {
        config = config.with_pool(Arc::clone(pool));
    }
    let exec = config.scheduler();
    let model = Pipeline::new(config).run(set.iter()).unwrap();
    let export = profile::export(&model);
    let model = Arc::new(model);
    let report = Generator::shared(model)
        .with_scheduler(exec)
        .attempts_per_candidate(8)
        .run_seeded(CANDIDATES, SEED ^ 0xf001);
    (export, report.candidates)
}

/// 2–4 concurrent jobs over distinct networks sharing one pool: every
/// job's model and candidate stream equals its solo serial oracle, at
/// every pool size.
#[test]
fn concurrent_jobs_on_shared_pool_match_solo_serial() {
    let networks = ["S1", "R1", "C1", "AT"];
    let oracles: Vec<_> = networks.iter().map(|id| run_one(id, 1, None)).collect();
    for pool_size in POOLS {
        for job_count in 2..=networks.len() {
            let pool = Arc::new(StealPool::new(pool_size));
            let results: Vec<_> = thread::scope(|s| {
                let handles: Vec<_> = networks[..job_count]
                    .iter()
                    .map(|id| {
                        let pool = Arc::clone(&pool);
                        s.spawn(move || run_one(id, 1, Some(pool)))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for ((id, got), want) in networks.iter().zip(&results).zip(&oracles) {
                assert_eq!(
                    got.0, want.0,
                    "{id}: model diverged on shared pool (pool={pool_size}, jobs={job_count})"
                );
                assert_eq!(
                    got.1, want.1,
                    "{id}: candidates diverged on shared pool (pool={pool_size}, jobs={job_count})"
                );
            }
        }
    }
}

/// The same invariant with a *sharded* geometry (parallelism > 1):
/// concurrent pool-backed jobs at jobs=3 equal the solo serial run at
/// jobs=3 — the pool changes who executes the shards, never what the
/// shards are.
#[test]
fn sharded_concurrent_jobs_match_solo_sharded() {
    let networks = ["S1", "R1", "C1"];
    let oracles: Vec<_> = networks.iter().map(|id| run_one(id, 3, None)).collect();
    for pool_size in [1, 7] {
        let pool = Arc::new(StealPool::new(pool_size));
        let results: Vec<_> = thread::scope(|s| {
            let handles: Vec<_> = networks
                .iter()
                .map(|id| {
                    let pool = Arc::clone(&pool);
                    s.spawn(move || run_one(id, 3, Some(pool)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for ((id, got), want) in networks.iter().zip(&results).zip(&oracles) {
            assert_eq!(got, want, "{id}: sharded run diverged (pool={pool_size})");
        }
        // The venue really was shared: one pool, one job per network.
        assert!(pool.stats().jobs >= networks.len() as u64);
    }
}

/// `--jobs` composes with the pool exactly as documented: it fixes
/// the shard geometry (the output), while the pool size only moves
/// work between threads. Crossing jobs ∈ {1, 4} with pool ∈ {1, 8}
/// must yield byte-identical artifacts per jobs value — and identical
/// across jobs values too, because every stage is worker-count
/// invariant by keyed construction.
#[test]
fn jobs_control_geometry_not_speed_on_shared_pools() {
    let baseline = run_one("S1", 1, None);
    for jobs in [1, 4] {
        for pool_size in [1, 8] {
            let pool = Arc::new(StealPool::new(pool_size));
            let got = run_one("S1", jobs, Some(pool));
            assert_eq!(
                got, baseline,
                "artifacts drifted at jobs={jobs}, pool={pool_size}"
            );
        }
    }
    // And the scheduler the config builds really is the shared one.
    let pool = Arc::new(StealPool::new(2));
    let exec = Config::default()
        .with_parallelism(4)
        .with_pool(Arc::clone(&pool))
        .scheduler();
    assert!(exec.has_pool());
    assert_eq!(exec.workers(), 4);
    assert_eq!(exec, Scheduler::new(4), "pool must not reach equality");
}
