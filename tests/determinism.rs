//! Tier-1 determinism suite: every scheduler-backed hot path must
//! produce byte-identical output at any worker count.
//!
//! The keyed per-index draws in [`eip_exec::rng`] make worker count
//! and shard geometry invisible by construction; this suite pins that
//! contract end-to-end — population synthesis, the staged pipeline's
//! tables of truth (the exported model), the batched generator's
//! candidate stream, and the evaluation counters — at worker counts
//! {1, 2, 7, 8}: the serial baseline, the smallest genuine split, and
//! a non-power-of-two/power-of-two pair that exercises uneven shard
//! boundaries.

use eip_exec::Scheduler;
use eip_netsim::{dataset, population_adherence};
use entropy_ip::{profile, Config, Generator, Pipeline};

const WORKERS: [usize; 4] = [1, 2, 7, 8];
const SEED: u64 = 20160317;
const POP: usize = 4_000;
const CANDIDATES: usize = 1_500;

/// Population synthesis: `population_sized_jobs` equals the serial
/// `population_sized` at every worker count — same `AddressSet`,
/// byte for byte.
#[test]
fn population_synthesis_is_worker_count_independent() {
    let spec = dataset("S1").unwrap();
    let serial = spec.population_sized(POP, SEED);
    for jobs in WORKERS {
        let sharded = spec.population_sized_jobs(POP, SEED, jobs);
        assert_eq!(sharded, serial, "population differs at jobs={jobs}");
    }
}

/// The staged pipeline (profile → segment → mine → train) yields the
/// same exported model at every parallelism setting.
#[test]
fn staged_pipeline_model_is_worker_count_independent() {
    let set = dataset("S1").unwrap().population_sized(POP, SEED);
    let baseline = Pipeline::new(Config::default().with_parallelism(1))
        .run(set.iter())
        .unwrap();
    let exported = profile::export(&baseline);
    for jobs in &WORKERS[1..] {
        let model = Pipeline::new(Config::default().with_parallelism(*jobs))
            .run(set.iter())
            .unwrap();
        assert_eq!(
            profile::export(&model),
            exported,
            "exported model differs at jobs={jobs}"
        );
    }
}

/// The batched generator's candidate stream — and every counter in
/// its report — equals the straight-line keyed reference at every
/// worker count.
#[test]
fn candidate_batches_are_worker_count_independent() {
    let set = dataset("S1").unwrap().population_sized(POP, SEED);
    let model = Pipeline::new(Config::default()).run(set.iter()).unwrap();
    let oracle = Generator::new(&model)
        .attempts_per_candidate(8)
        .run_keyed_reference(CANDIDATES, SEED ^ 0xf001);
    for jobs in WORKERS {
        let report = Generator::new(&model)
            .attempts_per_candidate(8)
            .parallelism(jobs)
            .run_seeded(CANDIDATES, SEED ^ 0xf001);
        assert_eq!(
            report.candidates, oracle.candidates,
            "candidate batch differs at jobs={jobs}"
        );
        assert_eq!(report.attempts, oracle.attempts, "attempts at jobs={jobs}");
        assert_eq!(
            report.duplicates, oracle.duplicates,
            "duplicates at jobs={jobs}"
        );
        assert_eq!(report.excluded, oracle.excluded, "excluded at jobs={jobs}");
    }
}

/// The full loop — synthesize, train, generate, evaluate — produces
/// identical adherence counters at every worker count, with every
/// stage running at that parallelism.
#[test]
fn end_to_end_adherence_is_worker_count_independent() {
    let spec = dataset("S1").unwrap();
    let mut baseline = None;
    for jobs in WORKERS {
        let population = spec.population_sized_jobs(POP, SEED, jobs);
        let model = Pipeline::new(Config::default().with_parallelism(jobs))
            .run(population.iter())
            .unwrap();
        let report = Generator::new(&model)
            .attempts_per_candidate(8)
            .parallelism(jobs)
            .run_seeded(CANDIDATES, SEED ^ 0xf001);
        let a = population_adherence(&report.candidates, &population, &Scheduler::new(jobs));
        let counters = (a.hits, a.slash64_hits, a.new_slash64);
        match baseline {
            None => baseline = Some(counters),
            Some(expected) => {
                assert_eq!(counters, expected, "adherence differs at jobs={jobs}")
            }
        }
    }
}
