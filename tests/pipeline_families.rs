//! Integration: the full pipeline runs on every simulated dataset
//! family and produces structurally sane models.

use eip_netsim::dataset;
use entropy_ip::{EntropyIp, ValueKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

const FAMILIES: [&str; 16] = [
    "S1", "S2", "S3", "S4", "S5", "R1", "R2", "R3", "R4", "R5", "C1", "C2", "C3", "C4", "C5", "AT",
];

#[test]
fn every_family_builds_a_model() {
    for id in FAMILIES {
        let set = dataset(id).unwrap().population_sized(3_000, 42);
        let model = EntropyIp::new().analyze(&set).unwrap();

        // Segments tile 1..=32 exactly.
        let segs = &model.analysis().segments;
        assert_eq!(segs.first().unwrap().start, 1, "{id}");
        assert_eq!(segs.last().unwrap().end, 32, "{id}");
        for w in segs.windows(2) {
            assert_eq!(w[0].end + 1, w[1].start, "{id}: gap between segments");
        }
        // Bits 1-32 are one segment; a boundary exists after bit 64.
        assert_eq!(segs[0].end, 8, "{id}: segment A must span bits 1-32");
        assert!(segs.iter().any(|s| s.start == 17), "{id}: no /64 boundary");

        // Every segment has a non-empty dictionary with sane freqs.
        for m in model.mined() {
            assert!(
                !m.values.is_empty(),
                "{id}: empty dictionary in {}",
                m.segment.label
            );
            for sv in &m.values {
                assert!(
                    sv.freq > 0.0 && sv.freq <= 1.0 + 1e-9,
                    "{id}: freq {}",
                    sv.freq
                );
                if let ValueKind::Range { lo, hi } = sv.kind {
                    assert!(lo < hi, "{id}: degenerate range");
                }
            }
        }

        // Nearly all training addresses encode (mining may drop
        // <=0.1% per segment).
        let encodable = set.iter().filter(|&ip| model.encode(ip).is_some()).count();
        assert!(
            encodable as f64 >= 0.97 * set.len() as f64,
            "{id}: only {encodable}/{} encodable",
            set.len()
        );
    }
}

#[test]
fn every_family_generates_model_consistent_candidates() {
    let mut rng = StdRng::seed_from_u64(7);
    for id in FAMILIES {
        let set = dataset(id).unwrap().population_sized(3_000, 1);
        let model = EntropyIp::new().analyze(&set).unwrap();
        let out = model.generate(200, 20_000, &mut rng);
        assert!(out.len() >= 100, "{id}: only {} candidates", out.len());
        for ip in &out {
            assert!(
                model.encode(*ip).is_some(),
                "{id}: {ip} does not match the model"
            );
        }
    }
}

#[test]
fn total_entropy_orders_clients_above_servers() {
    // §5.1: client addresses are the most random, servers the least.
    let h = |id: &str| {
        let set = dataset(id).unwrap().population_sized(5_000, 3);
        EntropyIp::new()
            .analyze(&set)
            .unwrap()
            .analysis()
            .total_entropy
    };
    let c2 = h("C2");
    let r1 = h("R1");
    let s3 = h("S3");
    assert!(c2 > r1, "client {c2} should exceed router {r1}");
    assert!(r1 > s3, "router {r1} should exceed anycast server {s3}");
}

#[test]
fn paper_hs_values_have_the_right_magnitude() {
    // The paper reports H_S = 4.6 for R1 and 21.2 for C1.
    let h = |id: &str| {
        let set = dataset(id).unwrap().population_sized(10_000, 3);
        EntropyIp::new()
            .analyze(&set)
            .unwrap()
            .analysis()
            .total_entropy
    };
    let r1 = h("R1");
    assert!((2.0..8.0).contains(&r1), "R1 H_S = {r1}, paper says 4.6");
    let c1 = h("C1");
    assert!((14.0..26.0).contains(&c1), "C1 H_S = {c1}, paper says 21.2");
}

#[test]
fn degenerate_inputs_are_handled() {
    use eip_addr::{AddressSet, Ip6};
    // Single address.
    let one: AddressSet = vec![Ip6(0x2001_0db8u128 << 96 | 1)].into_iter().collect();
    let model = EntropyIp::new().analyze(&one).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let out = model.generate(5, 100, &mut rng);
    assert_eq!(out.len(), 1, "a constant model can only emit one address");
    assert_eq!(out[0], one.iter().next().unwrap());

    // All-identical set.
    let same: AddressSet = std::iter::repeat_n(Ip6(77), 100).collect();
    assert!(EntropyIp::new().analyze(&same).is_ok());

    // Fully random set still builds and generates.
    let mut r = StdRng::seed_from_u64(2);
    let random: AddressSet = (0..500).map(|_| Ip6(rand::Rng::gen(&mut r))).collect();
    let model = EntropyIp::new().analyze(&random).unwrap();
    assert!(!model.generate(50, 5_000, &mut rng).is_empty());
}
