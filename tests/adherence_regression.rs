//! Regression tests for the `population_hits: 0` investigation.
//!
//! `repro --full` on S1 reports zero exact population hits at every
//! scale. That is paper-faithful, not a bug: S1's dominant variant
//! carries 64-bit pseudo-random IIDs, so an exact collision has odds
//! around 2⁻⁶⁴ per draw (the paper's Table 4 likewise shows ~0% for
//! S1). The tracked signal that the model still *aims* at the
//! population is [`Adherence::slash64_hits`] — candidates whose /64
//! exists in the population. These tests pin both halves: a sparse
//! IID family keeps aiming at real subnets, and a dense family scores
//! genuine exact hits.

use eip_exec::Scheduler;
use eip_netsim::{dataset, population_adherence};
use entropy_ip::{Config, Generator, Pipeline};

const SEED: u64 = 20160317;

fn adherence(id: &str, pop: usize, candidates: usize) -> eip_netsim::Adherence {
    let population = dataset(id).unwrap().population_sized(pop, SEED);
    let model = Pipeline::new(Config::default())
        .run(population.iter())
        .unwrap();
    let report = Generator::new(&model)
        .attempts_per_candidate(8)
        .run_seeded(candidates, SEED ^ 0xf001);
    population_adherence(&report.candidates, &population, &Scheduler::new(1))
}

/// S1 (sparse pseudo-random IIDs): exact hits may legitimately round
/// to zero, but the model must keep landing candidates inside the
/// population's real /64s — both counters at zero means generation or
/// evaluation regressed.
#[test]
fn s1_model_aims_at_population_slash64s() {
    let a = adherence("S1", 4_000, 2_000);
    assert!(
        a.slash64_hits > 0,
        "no candidate landed in a population /64 (hits {}, slash64_hits 0)",
        a.hits
    );
    // The headline invariant `repro --full` asserts, pinned here at
    // library level too.
    assert!(a.hits > 0 || a.slash64_hits > 0);
}

/// S3 (dense anycast, the paper's easiest network at ~43% hit rate):
/// exact population hits must be strictly positive — the zero-hit
/// outcome is an S1 artifact, not a property of the harness.
#[test]
fn dense_family_scores_exact_population_hits() {
    let a = adherence("S3", 4_000, 2_000);
    assert!(
        a.hits > 0,
        "dense S3 should collide with the population (slash64_hits {})",
        a.slash64_hits
    );
    assert!(a.slash64_hits >= a.hits, "an exact hit is also a /64 hit");
}
