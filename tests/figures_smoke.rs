//! Integration: every renderer produces plausible output on real
//! models (the figure-generating paths of the repro harness).

use eip_addr::Ip6;
use eip_netsim::dataset;
use eip_stats::WindowGrid;
use eip_viz::{
    bn_to_dot, render_browser, render_entropy_ascii, render_entropy_svg, render_window_ascii,
    render_window_svg,
};
use entropy_ip::{Browser, EntropyIp};

fn model(id: &str) -> (eip_addr::AddressSet, entropy_ip::IpModel) {
    let set = dataset(id).unwrap().population_sized(3_000, 9);
    let model = EntropyIp::new().analyze(&set).unwrap();
    (set, model)
}

#[test]
fn entropy_panels_render_for_every_family() {
    for id in ["S1", "S3", "R1", "R4", "C1", "C3", "AT"] {
        let (_, m) = model(id);
        let ascii = render_entropy_ascii(m.analysis(), 10);
        assert!(ascii.contains("H_S ="), "{id}");
        assert!(ascii.lines().count() > 10, "{id}");
        let svg = render_entropy_svg(m.analysis(), 640, 240);
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"), "{id}");
    }
}

#[test]
fn browser_renders_and_reacts() {
    let (_, m) = model("C1");
    let mut b = Browser::new(&m);
    let before = render_browser(&b.distributions(), 0.001);
    assert!(before.contains("segment A"));
    // Click the first segment's first code.
    let label = m.mined()[0].segment.label.clone();
    let code = m.mined()[0].values[0].code.clone();
    assert!(b.select(&label, &code));
    let after = render_browser(&b.distributions(), 0.001);
    assert!(after.contains("[*]"), "observed flag missing");
}

#[test]
fn dot_export_contains_every_segment() {
    let (_, m) = model("S1");
    let dot = bn_to_dot(m.bn(), None);
    for seg in &m.analysis().segments {
        assert!(
            dot.contains(&format!("\"{}\"", seg.label)),
            "{} missing",
            seg.label
        );
    }
    // Each learned edge appears.
    assert_eq!(dot.matches(" -> ").count(), m.bn().edges().len());
}

#[test]
fn window_grid_renders_both_ways() {
    let addrs: Vec<Ip6> = dataset("S1")
        .unwrap()
        .population_sized(1_000, 9)
        .iter()
        .collect();
    let grid = WindowGrid::compute(&addrs);
    let ascii = render_window_ascii(&grid);
    assert_eq!(ascii.lines().filter(|l| l.contains('|')).count(), 32);
    let svg = render_window_svg(&grid, 6);
    assert!(svg.matches("<rect").count() > 500);
}

#[test]
fn profile_round_trip_preserves_rendering() {
    let (_, m) = model("R1");
    let text = entropy_ip::profile::export(&m);
    let back = entropy_ip::profile::import(&text).unwrap();
    assert_eq!(
        render_entropy_ascii(m.analysis(), 10),
        render_entropy_ascii(back.analysis(), 10)
    );
    assert_eq!(bn_to_dot(m.bn(), None), bn_to_dot(back.bn(), None));
}
