//! Integration: the scanning evaluation (Tables 4-6) end to end at
//! reduced scale, asserting the paper's qualitative findings.

use eip_addr::set::SplitMix64;
use eip_netsim::{dataset, evaluate_scan, FaultConfig, Responder, TemporalPool};
use entropy_ip::{EntropyIp, Generator, Options};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct MiniRow {
    rate: f64,
    new64: usize,
    ping: usize,
}

fn mini_scan(id: &str, probe_loss: f64) -> MiniRow {
    let spec = dataset(id).unwrap();
    let observed = spec.population_sized(spec.default_population.min(12_000), 11);
    let mut rng = SplitMix64::new(5);
    let (train, test) = observed.split_sample(1_000, &mut rng);
    let responder =
        Responder::new(observed.clone(), spec.rdns_fraction, 3).with_faults(FaultConfig {
            probe_loss,
            echo_prefixes: vec![],
            seed: 9,
        });
    let model = EntropyIp::new().analyze(&train).unwrap();
    let mut gen_rng = StdRng::seed_from_u64(13);
    let candidates = Generator::new(&model)
        .excluding(&train)
        .run(10_000, &mut gen_rng)
        .candidates;
    let o = evaluate_scan(&candidates, &train, &test, &responder);
    MiniRow {
        rate: o.success_rate(),
        new64: o.new_slash64,
        ping: o.ping_hits,
    }
}

#[test]
fn s1_is_nearly_unscannable_and_s3_is_easy() {
    // Paper Table 4: S1 ~0%, S3 43% (the extremes among servers).
    let s1 = mini_scan("S1", 0.0);
    let s3 = mini_scan("S3", 0.0);
    assert!(s1.rate < 0.01, "S1 rate {} should be ~0", s1.rate);
    assert!(s3.rate > 0.10, "S3 rate {} should be high", s3.rate);
    assert!(s3.rate > 20.0 * s1.rate.max(1e-6));
}

#[test]
fn routers_discover_new_slash64s() {
    // Paper: the method predicts /64 prefixes not seen in training
    // (its key advance over IID-only scanning).
    let r1 = mini_scan("R1", 0.0);
    assert!(r1.rate > 0.005, "R1 rate {}", r1.rate);
    assert!(
        r1.new64 > 10,
        "R1 should discover new /64s, got {}",
        r1.new64
    );
}

#[test]
fn probe_loss_reduces_ping_hits() {
    let clean = mini_scan("R1", 0.0);
    let lossy = mini_scan("R1", 0.5);
    assert!(
        (lossy.ping as f64) < 0.8 * clean.ping as f64,
        "50% probe loss should depress ping hits: {} vs {}",
        lossy.ping,
        clean.ping
    );
}

#[test]
fn echo_prefix_inflates_success() {
    let spec = dataset("R3").unwrap();
    let observed = spec.population_sized(6_000, 11);
    let mut rng = SplitMix64::new(5);
    let (train, test) = observed.split_sample(1_000, &mut rng);
    let model = EntropyIp::new().analyze(&train).unwrap();
    let mut gen_rng = StdRng::seed_from_u64(13);
    let candidates = Generator::new(&model)
        .excluding(&train)
        .run(5_000, &mut gen_rng)
        .candidates;

    let clean = Responder::new(observed.clone(), 0.0, 3);
    let echo = Responder::new(observed.clone(), 0.0, 3).with_faults(FaultConfig {
        probe_loss: 0.0,
        echo_prefixes: vec!["2001:db8::/32".parse().unwrap()],
        seed: 1,
    });
    let o_clean = evaluate_scan(&candidates, &train, &test, &clean);
    let o_echo = evaluate_scan(&candidates, &train, &test, &echo);
    assert!(o_echo.ping_hits > 5 * o_clean.ping_hits.max(1));
    assert!(
        o_echo.success_rate() > 0.9,
        "every in-prefix candidate pings"
    );
}

#[test]
fn prefix_prediction_finds_active_slash64s() {
    // §5.6 at small scale: a top-64 model predicts prefixes active in
    // a churning pool.
    let spec = dataset("C5").unwrap();
    let pool = TemporalPool::new(spec.plan(), 4_000, 0.7, 21);
    let day0 = pool.day(0);
    let week = pool.window(0, 7);
    let mut rng = SplitMix64::new(5);
    let (train, _) = day0.split_sample(1_000, &mut rng);
    let model = EntropyIp::with_options(Options::top64())
        .analyze(&train)
        .unwrap();
    let mut gen_rng = StdRng::seed_from_u64(3);
    let candidates = Generator::new(&model)
        .excluding(&train)
        .run(10_000, &mut gen_rng)
        .candidates;
    let d0 = candidates.iter().filter(|&&p| day0.contains(p)).count();
    let d7 = candidates.iter().filter(|&&p| week.contains(p)).count();
    assert!(d0 > 20, "day-0 hits {d0}");
    assert!(d7 >= d0, "the week contains day 0");
    // All candidates are /64 networks.
    for p in &candidates {
        assert_eq!(p.value() & u128::from(u64::MAX), 0);
    }
}

#[test]
fn training_set_exclusion_is_respected() {
    let spec = dataset("S3").unwrap();
    let observed = spec.population_sized(6_000, 11);
    let mut rng = SplitMix64::new(5);
    let (train, _) = observed.split_sample(1_000, &mut rng);
    let model = EntropyIp::new().analyze(&train).unwrap();
    let mut gen_rng = StdRng::seed_from_u64(13);
    let report = Generator::new(&model)
        .excluding(&train)
        .run(5_000, &mut gen_rng);
    for ip in &report.candidates {
        assert!(!train.contains(*ip));
    }
}
