//! Integration: the headline *shapes* of the paper's evaluation hold
//! on the simulated substrate (§5.1's aggregate observations and the
//! per-family structural signatures of §5.2-5.4).

use eip_addr::Ip6;
use eip_netsim::dataset;
use eip_stats::nybble_entropy;

fn profile(id: &str, n: usize) -> [f64; 32] {
    let set = dataset(id).unwrap().population_sized(n, 33);
    let addrs: Vec<Ip6> = set.iter().collect();
    nybble_entropy(&addrs)
}

/// §5.1 / Fig. 6: clients have near-1 entropy in the low 64 bits with
/// the u-bit dip at bits 68-72 (not a full drop: not all addresses
/// are standard privacy addresses).
#[test]
fn client_aggregate_ubit_dip() {
    let h = profile("AC", 20_000);
    // Nybble 18 covers bits 68-72.
    assert!(h[17] < 0.95, "u-bit nybble should dip: {}", h[17]);
    assert!(h[17] > 0.6, "but not collapse: {}", h[17]);
    for pos in [19, 22, 27, 31] {
        assert!(
            h[pos] > 0.95,
            "IID nybble {} should be ~1: {}",
            pos + 1,
            h[pos]
        );
    }
}

/// §5.1: routers show a deeper drop at bits 88-104 (EUI-64 fffe), but
/// not to zero — "a major portion of router addresses did not have
/// MAC-based Modified EUI-64 IIDs".
#[test]
fn router_aggregate_eui64_drop() {
    let h = profile("AR", 20_000);
    let mid: f64 = h[22..26].iter().sum::<f64>() / 4.0; // nybbles 23-26 = bits 88-104
    let neighbors: f64 = (h[20] + h[27]) / 2.0;
    assert!(
        mid < neighbors - 0.1,
        "fffe region {mid} vs neighbors {neighbors}"
    );
    assert!(mid > 0.1, "the drop must not reach zero: {mid}");
}

/// §5.1: BitTorrent clients (AT) show more EUI-64 than web clients
/// (AC) — the only place the two aggregates differ.
#[test]
fn bittorrent_vs_web_clients() {
    let at = profile("AT", 20_000);
    let ac = profile("AC", 20_000);
    let at_mid: f64 = at[22..26].iter().sum();
    let ac_mid: f64 = ac[22..26].iter().sum();
    assert!(at_mid < ac_mid - 0.2, "AT {at_mid} vs AC {ac_mid}");
    // Elsewhere in the IID the two should roughly agree.
    assert!((at[30] - ac[30]).abs() < 0.15);
}

/// §5.1: servers' entropy rises toward bit 128 (static low-bit
/// assignment) and stays lowest overall.
#[test]
fn server_aggregate_rises_toward_low_bits() {
    let h = profile("AS", 20_000);
    assert!(
        h[31] > h[24],
        "last nybble {} vs nybble 25 {}",
        h[31],
        h[24]
    );
    assert!(h[31] > h[18] + 0.15, "steady increase from bit 80");
    let hs: f64 = h.iter().sum();
    let hc: f64 = profile("AC", 20_000).iter().sum();
    assert!(
        hs < hc,
        "servers {hs} must be less random than clients {hc}"
    );
}

/// §5.2: S1's two /32s and its IPv4-embedding variant.
#[test]
fn s1_signatures() {
    let set = dataset("S1").unwrap().population_sized(20_000, 33);
    assert_eq!(set.count_prefixes(32), 2);
    // Some addresses embed an IPv4 with first octet 127 in hex at
    // bits 96-104.
    let v4ish = set
        .iter()
        .filter(|ip| ip.bits(96, 104) == 127 && ip.bits(32, 40) == 0x07)
        .count();
    assert!(v4ish > 0, "no IPv4-embedded variant addresses");
}

/// §5.3: R1/R2 point-to-point IIDs; R4 decimal-octet IIDs.
#[test]
fn router_iid_signatures() {
    let r1 = dataset("R1").unwrap().population_sized(5_000, 33);
    let low = r1.iter().filter(|ip| ip.bits(64, 128) <= 2).count();
    assert!(
        low as f64 > 0.8 * r1.len() as f64,
        "R1 IIDs should be mostly 1 or 2: {low}/{}",
        r1.len()
    );

    let r4 = dataset("R4").unwrap().population_sized(2_000, 33);
    for ip in r4.iter().take(50) {
        let iid = ip.bits(64, 128) as u64;
        for w in 0..4 {
            let word = (iid >> (16 * (3 - w))) & 0xffff;
            assert!(
                (word >> 4) & 0xf <= 9 && word & 0xf <= 9,
                "{ip}: non-decimal word"
            );
        }
    }
}

/// §5.4: C1's Android share; C2's missing u-bit dip.
#[test]
fn client_signatures() {
    let c1 = dataset("C1").unwrap().population_sized(20_000, 33);
    let enders = c1.iter().filter(|ip| ip.bits(120, 128) == 1).count();
    let share = enders as f64 / c1.len() as f64;
    assert!((share - 0.47).abs() < 0.05, "C1 01-ender share {share}");

    let h2 = profile("C2", 10_000);
    assert!(h2[17] > 0.95, "C2 must NOT dip at the u-bit: {}", h2[17]);
}
