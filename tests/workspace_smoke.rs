//! Workspace smoke test: the entire Entropy/IP pipeline at toy scale,
//! touching every crate in one pass — address substrate, simulated
//! network, analysis, mining, Bayesian network, browsing, generation,
//! scanning evaluation, and all four renderers. Runs in well under a
//! second so end-to-end regressions fail fast.

use eip_addr::set::SplitMix64;
use eip_netsim::{dataset, evaluate_scan, Responder};
use eip_stats::WindowGrid;
use eip_viz::{
    bn_to_dot, render_browser, render_entropy_ascii, render_entropy_svg, render_window_ascii,
};
use entropy_ip::{Browser, EntropyIp, Generator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Toy-scale knobs (the `repro` harness defaults to train=1000 /
/// candidates=100000; the smoke test shrinks both ~4-20x).
const POPULATION: usize = 2_000;
const TRAIN: usize = 400;
const CANDIDATES: usize = 2_000;

#[test]
fn pipeline_end_to_end_at_toy_scale() {
    // eip_netsim: a simulated network from the paper's Table 1.
    let spec = dataset("S2").expect("catalog has S2");
    let observed = spec.population_sized(POPULATION, 77);
    assert!(observed.len() > POPULATION / 2, "population generated");

    // eip_addr: deterministic train/test split.
    let mut split_rng = SplitMix64::new(7);
    let (train, test) = observed.split_sample(TRAIN, &mut split_rng);
    assert_eq!(train.len(), TRAIN);
    assert_eq!(train.len() + test.len(), observed.len());

    // entropy_ip (+ eip_stats, eip_cluster, eip_bayes underneath):
    // the five-stage pipeline.
    let model = EntropyIp::new()
        .analyze(&train)
        .expect("non-empty training set");
    let analysis = model.analysis();
    assert_eq!(analysis.entropy.len(), 32, "one entropy per nybble");
    assert!(!analysis.segments.is_empty(), "segmentation found segments");
    assert!(!model.mined().is_empty(), "mining produced dictionaries");

    // eip_bayes: evidence propagation through the learned network.
    let prior = model.posterior(&vec![]);
    assert_eq!(prior.len(), model.bn().num_vars());
    for dist in &prior {
        let total: f64 = dist.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "marginal sums to 1, got {total}"
        );
    }

    // entropy_ip::browser: the conditional probability browser.
    let browser = Browser::new(&model);
    assert!(!browser.distributions().is_empty());

    // entropy_ip::generate: candidate targets, training set excluded.
    let mut gen_rng = StdRng::seed_from_u64(13);
    let report = Generator::new(&model)
        .excluding(&train)
        .run(CANDIDATES, &mut gen_rng);
    assert!(
        !report.candidates.is_empty(),
        "generator produced candidates"
    );
    for ip in &report.candidates {
        assert!(!train.contains(*ip), "training addresses must be excluded");
    }

    // eip_netsim::responder + eval: the simulated scanning campaign.
    let responder = Responder::new(observed.clone(), spec.rdns_fraction, 3);
    let outcome = evaluate_scan(&report.candidates, &train, &test, &responder);
    assert!(
        outcome.ping_hits > 0,
        "a structured network must be scannable"
    );
    assert!(outcome.success_rate() > 0.0);

    // eip_viz: every renderer emits plausible, non-empty output.
    let ascii = render_entropy_ascii(analysis, 10);
    assert!(ascii.lines().count() > 5, "ascii plot has a body");
    let svg = render_entropy_svg(analysis, 640, 240);
    assert!(svg.starts_with("<svg") && svg.trim_end().ends_with("</svg>"));
    let dot = bn_to_dot(model.bn(), None);
    assert!(dot.starts_with("digraph"), "DOT output: {dot}");
    let heat = render_browser(&browser.distributions(), 0.01);
    assert!(!heat.is_empty());

    // eip_stats: the windowing analysis renders too.
    let addrs: Vec<_> = train.iter().collect();
    let grid = WindowGrid::compute(&addrs);
    assert!(!render_window_ascii(&grid).is_empty());
}
