//! Integration: the staged pipeline API against the one-shot path —
//! byte-identical models, independently re-runnable stages, streaming
//! ingestion, and parallel/serial determinism.

use eip_bayes::LearnOptions;
use eip_netsim::dataset;
use entropy_ip::{profile, Config, EipError, EntropyIp, MiningOptions, Pipeline};

fn seed_set() -> eip_addr::AddressSet {
    dataset("S1").unwrap().population_sized(5_000, 20160317)
}

/// The staged path produces a model byte-identical (via
/// `profile::export`) to `EntropyIp::analyze` under the same options
/// and seed set.
#[test]
fn staged_equals_one_shot_byte_identical() {
    let set = seed_set();
    let staged = Pipeline::new(Config::default())
        .profile(set.iter())
        .unwrap()
        .segment()
        .mine()
        .train()
        .unwrap()
        .into_model();
    let one_shot = EntropyIp::new().analyze(&set).unwrap();
    assert_eq!(profile::export(&staged), profile::export(&one_shot));
}

/// Re-mine a `Segmented` artifact with altered `MiningOptions` and
/// retrain — without recomputing the entropy profile — and the result
/// still matches a from-scratch run under the same altered options.
#[test]
fn remine_and_retrain_from_segmented_artifact() {
    let set = seed_set();
    let altered = MiningOptions {
        top_per_step: 4,
        enumerate_limit: 2,
        ..MiningOptions::default()
    };

    // One profile + segmentation, reused for both minings.
    let segmented = Pipeline::new(Config::default())
        .profile(set.iter())
        .unwrap()
        .segment();
    let default_model = segmented.mine().train().unwrap().into_model();
    let altered_model = segmented.mine_with(&altered).train().unwrap().into_model();

    // The altered re-mine really changed the dictionaries...
    assert_ne!(
        profile::export(&default_model),
        profile::export(&altered_model)
    );
    // ...while the analysis (profile + segmentation) is shared.
    assert_eq!(default_model.analysis(), altered_model.analysis());

    // And the re-mined result is exactly what a from-scratch pipeline
    // with those options produces (stages hide no state).
    let scratch = Pipeline::new(Config {
        mining: altered,
        ..Config::default()
    })
    .run(set.iter())
    .unwrap();
    assert_eq!(profile::export(&altered_model), profile::export(&scratch));
}

/// Retraining a `Mined` artifact with altered `LearnOptions` reuses
/// the dictionaries and only changes the BN.
#[test]
fn retrain_from_mined_artifact() {
    let mined = Pipeline::new(Config::default())
        .profile(seed_set().iter())
        .unwrap()
        .segment()
        .mine();
    let default_bn = mined.train().unwrap();
    let no_edges = mined
        .train_with(&LearnOptions {
            max_parents: 0,
            ..LearnOptions::default()
        })
        .unwrap();
    assert!(no_edges.model().bn().edges().is_empty());
    assert!(!default_bn.model().bn().edges().is_empty());
    assert_eq!(default_bn.model().mined(), no_edges.model().mined());
}

/// Same `Config` seed set ⇒ identical `IpModel` at `parallelism` 1
/// and N (per-segment mining fans out over scoped threads but joins
/// in segment order).
#[test]
fn parallel_and_serial_mining_are_deterministic() {
    let set = seed_set();
    let serial = Pipeline::new(Config::default().with_parallelism(1))
        .run(set.iter())
        .unwrap();
    for n in [2usize, 4, 16] {
        let parallel = Pipeline::new(Config::default().with_parallelism(n))
            .run(set.iter())
            .unwrap();
        assert_eq!(
            profile::export(&serial),
            profile::export(&parallel),
            "parallelism {n} diverged"
        );
    }
}

/// Streaming ingestion: profiling an iterator (with duplicates, out
/// of order) equals profiling the materialized set, and the line
/// reader agrees with both.
#[test]
fn streaming_ingestion_matches_materialized() {
    let set = seed_set();
    // Stream with duplicates and reversed order.
    let stream: Vec<eip_addr::Ip6> = set
        .as_slice()
        .iter()
        .rev()
        .copied()
        .chain(set.iter().take(500))
        .collect();
    let p = Pipeline::new(Config::default());
    let from_stream = p.profile(stream).unwrap();
    let from_set = p.profile(set.iter()).unwrap();
    assert_eq!(from_stream.entropy(), from_set.entropy());
    assert_eq!(from_stream.acr(), from_set.acr());
    assert_eq!(from_stream.num_addresses(), from_set.num_addresses());

    // Line-reader path: render and re-ingest.
    let text: String = set.iter().map(|ip| format!("{ip}\n")).collect();
    let from_lines = p.profile_lines(text.as_bytes()).unwrap();
    assert_eq!(from_lines.entropy(), from_set.entropy());
    assert_eq!(from_lines.num_addresses(), from_set.num_addresses());
}

/// The unified error surfaces through both entry points.
#[test]
fn unified_errors_from_both_paths() {
    assert_eq!(
        Pipeline::new(Config::default())
            .profile(std::iter::empty())
            .unwrap_err(),
        EipError::EmptySet
    );
    assert_eq!(
        EntropyIp::new()
            .analyze(&eip_addr::AddressSet::new())
            .unwrap_err(),
        EipError::EmptySet
    );
    assert!(matches!(
        profile::import("entropy-ip-profile v9\n"),
        Err(EipError::Profile(_))
    ));
}
