#!/usr/bin/env bash
# Chaos smoke for the hardened model service, over real sockets and a
# real process lifecycle:
#
#   1. slow-loris client → cut off by the read deadline (timeouts
#      counter), daemon stays responsive;
#   2. mid-stream disconnects and an oversize request line → tagged
#      ERR limit, no wedged threads;
#   3. a truncated .eipm → repeated queries draw the quarantined error
#      from the negative cache (cache_load_failures / cache_neg_hits),
#      not a disk decode per request;
#   4. SIGKILL the daemon, restart over the same store → the same
#      pinned-seed GEN batch, byte-identical to the offline CLI;
#   5. concurrent re-save of the container (atomic tmp+rename) under
#      query load → queries keep succeeding, no torn reads;
#   6. final STATS reports conns_open 1 (only the STATS connection
#      itself) — no leaked connection slots.
#
# Usage: tools/chaos_smoke.sh [workdir]   (default: a fresh temp dir)
set -euo pipefail

eip="target/release/eip"
if [[ ! -x "$eip" ]]; then
    cargo build --release -p repro
fi

work="${1:-$(mktemp -d /tmp/eip_chaos_smoke.XXXXXX)}"
mkdir -p "$work/models"
echo "chaos_smoke: working in $work"

python3 - "$work/ips.txt" <<'PY'
import sys
lines = []
for i in range(600):
    lines.append(f"2001:db8:{i % 4}::{i:x}")
for i in range(400):
    lines.append(f"3001:db8:{8 + i % 8}::{i * 5 + 1:x}")
with open(sys.argv[1], "w") as f:
    f.write("\n".join(lines) + "\n")
PY

"$eip" analyze "$work/ips.txt" --model-out "$work/models/S1.eipm" > /dev/null
"$eip" generate --model-in "$work/models/S1.eipm" -n 100 --seed 7 > "$work/expected.txt"

serve_pid=""
start_daemon() {
    # Tight limits so the chaos cases trip them fast: 2s deadlines and
    # a small GEN cap.
    "$eip" serve "$work/models" --port 0 --timeout-secs 2 --max-gen 1000 \
        > "$work/serve.log" 2>&1 &
    serve_pid=$!
    addr=""
    for _ in $(seq 100); do
        addr="$(awk '/^listening on / {print $3}' "$work/serve.log" || true)"
        [[ -n "$addr" ]] && break
        sleep 0.1
    done
    if [[ -z "$addr" ]]; then
        echo "chaos_smoke: daemon never reported its address" >&2
        cat "$work/serve.log" >&2
        exit 1
    fi
}
trap '[[ -n "$serve_pid" ]] && kill "$serve_pid" 2>/dev/null || true' EXIT
start_daemon
echo "chaos_smoke: daemon at $addr"

stat_counter() { # stat_counter <name>
    "$eip" query "$addr" STATS | awk -v k="$1" '$1 == k {print $2}'
}

# --- 1. slow loris: a half-request, then silence -----------------------
python3 - "$addr" <<'PY'
import socket, sys, time
host, port = sys.argv[1].rsplit(":", 1)
s = socket.create_connection((host, int(port)), timeout=10)
s.settimeout(10)
banner = s.recv(4096)
assert banner.startswith(b"OK EIP-SERVE"), banner
s.sendall(b"STA")  # never finish the line
start = time.time()
rest = b""
try:
    while True:
        got = s.recv(4096)
        if not got:
            break
        rest += got
except socket.timeout:
    raise SystemExit("server did not enforce its read deadline")
elapsed = time.time() - start
assert elapsed < 8, f"close took {elapsed:.1f}s"
print(f"slow loris closed after {elapsed:.1f}s")
PY
timeouts="$(stat_counter timeouts)"
[[ "$timeouts" -ge 1 ]] \
    || { echo "chaos_smoke: expected timeouts >= 1, got $timeouts" >&2; exit 1; }
echo "chaos_smoke: slow loris cut off (timeouts=$timeouts)"

# --- 2. mid-stream disconnect + oversize line + GEN over cap -----------
python3 - "$addr" <<'PY'
import socket, sys
host, port = sys.argv[1].rsplit(":", 1)

# Disconnect mid-request: send half a command and slam the socket.
s = socket.create_connection((host, int(port)), timeout=10)
s.recv(4096)
s.sendall(b"GEN S1")
s.close()

# Oversize request line: must draw ERR limit, then a close.
s = socket.create_connection((host, int(port)), timeout=10)
s.settimeout(10)
s.recv(4096)
s.sendall(b"x" * 10000 + b"\n")
resp = b""
while True:
    got = s.recv(4096)
    if not got:
        break
    resp += got
assert resp.startswith(b"ERR limit"), resp
print("oversize line rejected:", resp.split(b"\n")[0].decode())
PY
# (Responses go through files: piping `eip query` into head would
# close its stdout early and panic the client on a long response.)
"$eip" query "$addr" GEN S1 5000 seed=1 > "$work/overcap.txt"
head -1 "$work/overcap.txt" | grep -q "^ERR limit" \
    || { echo "chaos_smoke: GEN over --max-gen not tagged ERR limit" >&2; exit 1; }
oversize="$(stat_counter oversize_lines)"
[[ "$oversize" -ge 1 ]] \
    || { echo "chaos_smoke: expected oversize_lines >= 1, got $oversize" >&2; exit 1; }
echo "chaos_smoke: abusive requests rejected (oversize_lines=$oversize)"

# --- 3. truncated container → quarantine, not a decode storm -----------
cp "$work/models/S1.eipm" "$work/S1.eipm.good"
python3 - "$work/models/S1.eipm" <<'PY'
import sys
path = sys.argv[1]
data = open(path, "rb").read()
open(path, "wb").write(data[: len(data) // 2])
PY
loads_before="$(stat_counter cache_loads)"
for _ in $(seq 5); do
    "$eip" query "$addr" BROWSE S1 A > "$work/browse.txt"
    head -1 "$work/browse.txt" | grep -q "^ERR" \
        || { echo "chaos_smoke: truncated container served OK?!" >&2; exit 1; }
done
loads_after="$(stat_counter cache_loads)"
neg_hits="$(stat_counter cache_neg_hits)"
failures="$(stat_counter cache_load_failures)"
[[ "$failures" -ge 1 ]] \
    || { echo "chaos_smoke: expected cache_load_failures >= 1" >&2; exit 1; }
[[ "$neg_hits" -ge 3 ]] \
    || { echo "chaos_smoke: expected neg-cache hits, got $neg_hits" >&2; exit 1; }
[[ $((loads_after - loads_before)) -le 2 ]] \
    || { echo "chaos_smoke: quarantine did not stop the decode storm ($loads_before -> $loads_after)" >&2; exit 1; }
echo "chaos_smoke: truncated container quarantined (load_failures=$failures neg_hits=$neg_hits)"

# --- 4. SIGKILL, restore the store, restart → same GEN bytes -----------
kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
cp "$work/S1.eipm.good" "$work/models/S1.eipm"
start_daemon
echo "chaos_smoke: restarted after SIGKILL at $addr"
"$eip" query "$addr" GEN S1 100 seed=7 > "$work/gen.txt"
head -1 "$work/gen.txt" | grep -q "^OK GEN S1 100 seed=7" \
    || { echo "chaos_smoke: unexpected GEN header after restart" >&2; cat "$work/gen.txt" >&2; exit 1; }
tail -n +2 "$work/gen.txt" > "$work/got.txt"
diff -u "$work/expected.txt" "$work/got.txt" \
    || { echo "chaos_smoke: GEN drifted after SIGKILL+restart" >&2; exit 1; }
echo "chaos_smoke: GEN batch byte-identical after SIGKILL+restart"

# --- 5. atomic re-save under query load --------------------------------
# Retrain into the live store while clients query: save_file goes
# through tmp+rename, so no query may ever see a torn container.
"$eip" analyze "$work/ips.txt" --model-out "$work/models/S1.eipm" > /dev/null &
save_pid=$!
for _ in $(seq 10); do
    "$eip" query "$addr" PREDICT64 S1 2001:db8::1 > "$work/predict.txt"
    head -1 "$work/predict.txt" | grep -q "^OK PREDICT64" \
        || { echo "chaos_smoke: query failed during concurrent re-save" >&2; exit 1; }
done
wait "$save_pid"
echo "chaos_smoke: queries stayed OK through a concurrent atomic re-save"

# --- 6. no leaked connection slots -------------------------------------
sleep 0.5
conns="$(stat_counter conns_open)"
[[ "$conns" == "1" ]] \
    || { echo "chaos_smoke: expected conns_open 1 (the STATS probe), got $conns" >&2; exit 1; }
echo "chaos_smoke: no leaked connection slots (conns_open=$conns)"

kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
trap - EXIT
echo "chaos_smoke: OK"
