#!/usr/bin/env bash
# Bench-regression smoke: runs the `stages` bench target and fails if
# the sharded parallel mining path is not faster than the serial
# reference by the configured margin — guarding the whole point of the
# sharded execution core (before it, stage_mine/parallel4_10000 ~=
# stage_mine/serial_10000 because one heavy segment owned the critical
# path).
#
# Usage: tools/bench_guard.sh
#   BENCH_MINE_MARGIN   required ratio parallel/serial (default 0.9,
#                       i.e. the sharded path must be >=10% faster)
set -euo pipefail

margin="${BENCH_MINE_MARGIN:-0.9}"

out="$(cargo bench -p eip_bench --bench stages 2>&1)"
echo "$out"

serial="$(echo "$out" | awk '/bench stage_mine\/serial_10000:/ {print $3}')"
parallel="$(echo "$out" | awk '/bench stage_mine\/parallel4_10000:/ {print $3}')"

if [[ -z "$serial" || -z "$parallel" ]]; then
    echo "bench_guard: could not find stage_mine results in bench output" >&2
    exit 1
fi

echo
echo "bench_guard: serial=${serial} ns/iter, parallel4=${parallel} ns/iter," \
     "required ratio <= ${margin}"

if awk -v s="$serial" -v p="$parallel" -v m="$margin" 'BEGIN { exit !(p <= s * m) }'; then
    awk -v s="$serial" -v p="$parallel" \
        'BEGIN { printf "bench_guard: OK (ratio %.3f)\n", p / s }'
else
    awk -v s="$serial" -v p="$parallel" \
        'BEGIN { printf "bench_guard: FAIL (ratio %.3f) — sharded mining lost its edge\n", p / s }' >&2
    exit 1
fi
