#!/usr/bin/env bash
# Bench-regression smoke: runs the `stages` bench target and fails if
# a sharded engine is not faster than its serial reference by the
# configured margin — guarding the whole point of the sharded
# execution core. Five guarded edges:
#
#   * stage_synthesize: parallel4 (keyed per-index draws through the
#     compiled address plan, DedupSet screen, presorted set build) vs
#     the straight-line keyed oracle, at the 500k paper scale where
#     the oracle's large hash table thrashes cache;
#   * stage_mine:     parallel4 vs serial (before the PR 3 sharded
#     engine the two were equal because one heavy segment owned the
#     critical path);
#   * stage_train:    parallel4 vs serial (before the PR 4 count-reuse
#     engine, training re-scanned all rows through a HashMap per
#     candidate parent set and was the largest `--full` stage);
#   * stage_generate: parallel4 (compiled sampling plan on the batched
#     scheduler) vs the serial `sample_row` oracle (before PR 5 every
#     draw allocated two Vecs and rescanned CPT weights);
#   * stage_evaluate: parallel4 (sharded sort-merge-join) vs the
#     tree/hash bookkeeping the `--full` evaluate stage used before
#     PR 5.
#
# Plus one edge from the `ingest` bench target:
#
#   * stage_ingest: the chunked streaming engine (newline-aligned
#     chunks, SWAR line split, per-chunk sorted runs folded by linear
#     merges) vs the serial one-line-at-a-time oracle, over a
#     2M-line duplicate-heavy corpus. The edge must hold even on a
#     single-CPU host, where it comes purely from doing less work per
#     line — real cores only widen it.
#
# Plus one edge from the `serve` bench target:
#
#   * stage_serve fetch: an LRU hit (lock + tick + Arc clone) must
#     beat a cold registry load (disk read + checksum + container
#     decode + SamplingPlan recompile) — the decoded-model cache is
#     the reason `eip serve` can answer a 16-network fleet at
#     interactive rates.
#
# Plus one edge from the fleet driver itself:
#
#   * stage_fleet: `repro --fleet` (all 16 Table-1 networks end-to-end
#     concurrently on the shared work-stealing pool) vs its own
#     sequential-sum baseline (the same 16 networks solo, one at a
#     time), read back from the BENCH_fleet.json the run writes. The
#     margin is two-regime: on a multi-core host the concurrent fleet
#     must genuinely beat the sequential sum; on a single-CPU host no
#     parallel speedup is physically possible, so the guard instead
#     bounds the scheduling overhead the shared pool is allowed to
#     add.
#
# Usage: tools/bench_guard.sh
#   BENCH_FLEET_MARGIN     required ratio fleet_wall/sequential_sum
#                          (default 0.95 on multi-core hosts — the
#                          concurrent fleet must win; 1.15 when nproc
#                          is 1 — bounded overhead instead)
#   BENCH_FLEET_CANDIDATES fleet guard scale per network
#                          (default 100000; the committed
#                          BENCH_fleet.json uses the paper's 1M)
#   BENCH_SYNTH_MARGIN     required ratio parallel/serial for synthesis
#                          (default 0.9, i.e. >=10% faster)
#   BENCH_MINE_MARGIN      required ratio parallel/serial for mining
#                          (default 0.9, i.e. >=10% faster)
#   BENCH_TRAIN_MARGIN     required ratio parallel/serial for training
#                          (default 1.0, i.e. parallel <= serial)
#   BENCH_GENERATE_MARGIN  required ratio for generation (default 0.9)
#   BENCH_EVALUATE_MARGIN  required ratio for evaluation (default 0.9)
#   BENCH_INGEST_MARGIN    required ratio streaming/serial for stage-1
#                          ingestion (default 0.95; holds at ~0.90 even
#                          on a one-CPU host)
#   BENCH_SERVE_MARGIN     required ratio lru_hit/cold_load for the
#                          model registry (default 0.5, i.e. a hit
#                          must be at least 2x faster than a cold load)
set -euo pipefail

synth_margin="${BENCH_SYNTH_MARGIN:-0.9}"
mine_margin="${BENCH_MINE_MARGIN:-0.9}"
train_margin="${BENCH_TRAIN_MARGIN:-1.0}"
generate_margin="${BENCH_GENERATE_MARGIN:-0.9}"
evaluate_margin="${BENCH_EVALUATE_MARGIN:-0.9}"
ingest_margin="${BENCH_INGEST_MARGIN:-0.95}"
serve_margin="${BENCH_SERVE_MARGIN:-0.5}"

out="$(cargo bench -p eip_bench --bench stages 2>&1)"
echo "$out"
echo

ingest_out="$(cargo bench -p eip_bench --bench ingest 2>&1)"
echo "$ingest_out"
echo

serve_out="$(cargo bench -p eip_bench --bench serve 2>&1)"
echo "$serve_out"
echo

# check_edge NAME SERIAL_NS PARALLEL_NS MARGIN
check_edge() {
    local name="$1" serial="$2" parallel="$3" margin="$4"
    if [[ -z "$serial" || -z "$parallel" ]]; then
        echo "bench_guard: could not find $name results in bench output" >&2
        exit 1
    fi
    echo "bench_guard: $name serial=${serial} ns/iter," \
         "parallel4=${parallel} ns/iter, required ratio <= ${margin}"
    if awk -v s="$serial" -v p="$parallel" -v m="$margin" 'BEGIN { exit !(p <= s * m) }'; then
        awk -v s="$serial" -v p="$parallel" -v n="$name" \
            'BEGIN { printf "bench_guard: %s OK (ratio %.3f)\n", n, p / s }'
    else
        awk -v s="$serial" -v p="$parallel" -v n="$name" \
            'BEGIN { printf "bench_guard: %s FAIL (ratio %.3f) — sharded path lost its edge\n", n, p / s }' >&2
        exit 1
    fi
}

check_edge stage_synthesize \
    "$(echo "$out" | awk '/bench stage_synthesize\/serial_500000:/ {print $3}')" \
    "$(echo "$out" | awk '/bench stage_synthesize\/parallel4_500000:/ {print $3}')" \
    "$synth_margin"

check_edge stage_mine \
    "$(echo "$out" | awk '/bench stage_mine\/serial_50000:/ {print $3}')" \
    "$(echo "$out" | awk '/bench stage_mine\/parallel4_50000:/ {print $3}')" \
    "$mine_margin"

check_edge stage_train \
    "$(echo "$out" | awk '/bench stage_train\/serial_10000:/ {print $3}')" \
    "$(echo "$out" | awk '/bench stage_train\/parallel4_10000:/ {print $3}')" \
    "$train_margin"

check_edge stage_generate \
    "$(echo "$out" | awk '/bench stage_generate\/serial_10000:/ {print $3}')" \
    "$(echo "$out" | awk '/bench stage_generate\/parallel4_10000:/ {print $3}')" \
    "$generate_margin"

check_edge stage_evaluate \
    "$(echo "$out" | awk '/bench stage_evaluate\/serial_10000:/ {print $3}')" \
    "$(echo "$out" | awk '/bench stage_evaluate\/parallel4_10000:/ {print $3}')" \
    "$evaluate_margin"

check_edge stage_ingest \
    "$(echo "$ingest_out" | awk '/bench stage_ingest\/serial_2000000:/ {print $3}')" \
    "$(echo "$ingest_out" | awk '/bench stage_ingest\/parallel4_2000000:/ {print $3}')" \
    "$ingest_margin"

# For the serve edge the "serial" baseline is the cold registry load
# and the "parallel" contender is the LRU hit.
check_edge stage_serve_fetch \
    "$(echo "$serve_out" | awk '/bench stage_serve\/fetch_cold:/ {print $3}')" \
    "$(echo "$serve_out" | awk '/bench stage_serve\/fetch_lru_hit:/ {print $3}')" \
    "$serve_margin"

# The fleet edge: run the concurrent 16-network sweep at guard scale
# and compare its wall-clock against the sequential-sum baseline the
# same run measures. Two-regime margin (see header): real speedup on
# multi-core hosts, bounded overhead on a single CPU.
cores="$(nproc 2>/dev/null || echo 1)"
if [[ -n "${BENCH_FLEET_MARGIN:-}" ]]; then
    fleet_margin="$BENCH_FLEET_MARGIN"
elif [[ "$cores" -gt 1 ]]; then
    fleet_margin="0.95"
else
    fleet_margin="1.15"
    echo "bench_guard: single-CPU host — fleet edge checks bounded" \
         "pool overhead (<= ${fleet_margin}x sequential), not speedup"
fi
fleet_candidates="${BENCH_FLEET_CANDIDATES:-100000}"
fleet_tmp="$(mktemp -d)"
fleet_json="$fleet_tmp/BENCH_fleet.json"
cargo run --release -q -p repro -- --fleet \
    --candidates "$fleet_candidates" --jobs 2 \
    --store-out "$fleet_tmp/models" --bench-out "$fleet_json"
echo

# For the fleet edge the "serial" baseline is the sequential sum and
# the "parallel" contender is the concurrent fleet wall-clock.
check_edge stage_fleet \
    "$(awk -F': ' '/"sequential_sum"/ {gsub(/[ ,]/, "", $2); print $2}' "$fleet_json")" \
    "$(awk -F': ' '/"fleet_wall"/ {gsub(/[ ,]/, "", $2); print $2}' "$fleet_json")" \
    "$fleet_margin"
rm -rf "$fleet_tmp"
