#!/usr/bin/env bash
# End-to-end smoke for the model service: train a model with the CLI,
# persist it as a .eipm container, boot `eip serve` on an ephemeral
# loopback port, run a scripted BROWSE + GEN + PREDICT64 + STATS
# session through `eip query`, and byte-diff the daemon's GEN batch
# against `eip generate --model-in` with the same seed — the
# train-once/serve-anywhere determinism contract, checked over a real
# socket. Exits non-zero on any protocol error or byte drift.
#
# Usage: tools/serve_smoke.sh [workdir]   (default: a fresh temp dir)
set -euo pipefail

eip="target/release/eip"
if [[ ! -x "$eip" ]]; then
    cargo build --release -p repro
fi

work="${1:-$(mktemp -d /tmp/eip_serve_smoke.XXXXXX)}"
mkdir -p "$work/models"
echo "serve_smoke: working in $work"

# A two-prefix training set with per-subnet structure, the same shape
# the e2e tests train on.
python3 - "$work/ips.txt" <<'PY'
import sys
lines = []
for i in range(600):
    lines.append(f"2001:db8:{i % 4}::{i:x}")
for i in range(400):
    lines.append(f"3001:db8:{8 + i % 8}::{i * 5 + 1:x}")
with open(sys.argv[1], "w") as f:
    f.write("\n".join(lines) + "\n")
PY

# Train once, persist the container; then the offline reference batch.
"$eip" analyze "$work/ips.txt" --model-out "$work/models/S1.eipm" > /dev/null
"$eip" generate --model-in "$work/models/S1.eipm" -n 100 --seed 7 > "$work/expected.txt"

# Boot the daemon on an ephemeral port and parse the bound address.
"$eip" serve "$work/models" --port 0 > "$work/serve.log" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
addr=""
for _ in $(seq 100); do
    addr="$(awk '/^listening on / {print $3}' "$work/serve.log" || true)"
    [[ -n "$addr" ]] && break
    sleep 0.1
done
if [[ -z "$addr" ]]; then
    echo "serve_smoke: daemon never reported its address" >&2
    cat "$work/serve.log" >&2
    exit 1
fi
echo "serve_smoke: daemon at $addr"

# Scripted session: every command once, each response must lead OK.
# PREDICT64 also hands us a mined segment label for the BROWSE probe
# (labels are assigned by the miner, so the script discovers one
# rather than guessing).
"$eip" query "$addr" STATS | tee "$work/last.txt"
head -1 "$work/last.txt" | grep -q "^OK STATS" \
    || { echo "serve_smoke: STATS did not return OK" >&2; exit 1; }

"$eip" query "$addr" PREDICT64 S1 2001:db8::1 | tee "$work/predict.txt"
head -1 "$work/predict.txt" | grep -q "^OK PREDICT64 S1 " \
    || { echo "serve_smoke: PREDICT64 did not return OK" >&2; exit 1; }
label="$(awk '/^S / {print $2; exit}' "$work/predict.txt")"
if [[ -z "$label" ]]; then
    echo "serve_smoke: PREDICT64 reported no segments" >&2
    exit 1
fi

"$eip" query "$addr" BROWSE S1 "$label" | tee "$work/browse.txt"
head -1 "$work/browse.txt" | grep -q "^OK BROWSE S1 $label " \
    || { echo "serve_smoke: BROWSE $label did not return OK" >&2; exit 1; }

# The contract the subsystem exists for: a pinned-seed GEN over the
# wire is byte-identical to the offline CLI batch from the same model.
"$eip" query "$addr" GEN S1 100 seed=7 > "$work/gen.txt"
head -1 "$work/gen.txt" | grep -q "^OK GEN S1 100 seed=7" \
    || { echo "serve_smoke: unexpected GEN header" >&2; cat "$work/gen.txt" >&2; exit 1; }
tail -n +2 "$work/gen.txt" > "$work/got.txt"
diff -u "$work/expected.txt" "$work/got.txt" \
    || { echo "serve_smoke: GEN batch drifted from eip generate --model-in" >&2; exit 1; }
echo "serve_smoke: GEN batch byte-identical to offline generate"

# Clean shutdown: SIGTERM, then the port must stop answering.
kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
trap - EXIT
echo "serve_smoke: OK"
