#!/usr/bin/env bash
# End-to-end smoke for the fleet pipeline: run `repro --fleet` at toy
# scale (all 16 Table-1 networks concurrently on the shared
# work-stealing pool), assert one persisted .eipm per network, boot
# `eip serve` over the populated store, and byte-diff pinned-seed GEN
# batches from three networks against `eip generate --model-in` on
# the same containers — the fleet-train-once/serve-anywhere
# determinism contract, checked over a real socket. Also asserts the
# STATS residency gauges (`networks 16`, `models_resident`,
# per-model `model <id>` lines) so servability is observable, not
# assumed. Exits non-zero on any drift.
#
# Usage: tools/fleet_smoke.sh [workdir]   (default: a fresh temp dir)
set -euo pipefail

eip="target/release/eip"
repro="target/release/repro"
if [[ ! -x "$eip" || ! -x "$repro" ]]; then
    cargo build --release -p repro
fi

work="${1:-$(mktemp -d /tmp/eip_fleet_smoke.XXXXXX)}"
echo "fleet_smoke: working in $work"

# The concurrent fleet at smoke scale: 16 networks, shared pool,
# models persisted into one store, byte-identity vs the solo serial
# baseline asserted inside the run itself.
"$repro" --fleet --candidates 2000 --jobs 2 \
    --store-out "$work/models" --bench-out "$work/fleet.json" \
    | tee "$work/fleet.log"

count="$(ls "$work/models"/*.eipm | wc -l)"
if [[ "$count" -ne 16 ]]; then
    echo "fleet_smoke: expected 16 persisted models, found $count" >&2
    exit 1
fi
echo "fleet_smoke: 16 models persisted"

# Boot the daemon over the fleet store on an ephemeral port.
"$eip" serve "$work/models" --port 0 > "$work/serve.log" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
addr=""
for _ in $(seq 100); do
    addr="$(awk '/^listening on / {print $3}' "$work/serve.log" || true)"
    [[ -n "$addr" ]] && break
    sleep 0.1
done
if [[ -z "$addr" ]]; then
    echo "fleet_smoke: daemon never reported its address" >&2
    cat "$work/serve.log" >&2
    exit 1
fi
echo "fleet_smoke: daemon at $addr"

# The store must advertise the whole fleet before anything is loaded.
"$eip" query "$addr" STATS > "$work/stats0.txt"
grep -q "^networks 16$" "$work/stats0.txt" \
    || { echo "fleet_smoke: daemon does not see all 16 networks" >&2; cat "$work/stats0.txt" >&2; exit 1; }

# Pinned-seed GEN from three networks across the families, each
# byte-diffed against the offline CLI over the same container.
for net in S1 R2 C3; do
    "$eip" generate --model-in "$work/models/$net.eipm" -n 50 --seed 7 > "$work/$net.expected.txt"
    "$eip" query "$addr" "GEN $net 50 seed=7" > "$work/$net.gen.txt"
    head -1 "$work/$net.gen.txt" | grep -q "^OK GEN $net 50 seed=7" \
        || { echo "fleet_smoke: unexpected GEN header for $net" >&2; cat "$work/$net.gen.txt" >&2; exit 1; }
    tail -n +2 "$work/$net.gen.txt" > "$work/$net.got.txt"
    diff -u "$work/$net.expected.txt" "$work/$net.got.txt" \
        || { echo "fleet_smoke: $net GEN batch drifted from eip generate --model-in" >&2; exit 1; }
    echo "fleet_smoke: $net GEN batch byte-identical to offline generate"
done

# Residency gauges: the three models just exercised must be resident
# and individually listed.
"$eip" query "$addr" STATS > "$work/stats1.txt"
grep -q "^models_resident 3$" "$work/stats1.txt" \
    || { echo "fleet_smoke: models_resident gauge wrong" >&2; cat "$work/stats1.txt" >&2; exit 1; }
for net in S1 R2 C3; do
    grep -q "^model $net$" "$work/stats1.txt" \
        || { echo "fleet_smoke: $net not reported resident" >&2; cat "$work/stats1.txt" >&2; exit 1; }
done
echo "fleet_smoke: residency gauges report all three served models"

kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
trap - EXIT
echo "fleet_smoke: OK"
