#!/usr/bin/env bash
# End-to-end smoke for the streaming ingestion engine at scale:
# synthesize a multi-million-line duplicate-heavy address corpus with
# `repro --corpus-out`, run `eip analyze --model-out` over it twice —
# once through the chunked streaming engine, once through the serial
# one-line-at-a-time oracle (`--chunk-mb 0`) — and byte-diff the two
# persisted .eipm containers: the determinism contract, checked over a
# real file at a scale where chunk boundaries, carry lines, and the
# run-merge machinery all do real work. Also asserts the streaming
# run's peak RSS stays under a ceiling that the corpus itself exceeds,
# i.e. the engine really is bounded-memory. Exits non-zero on any
# byte drift or RSS blowout.
#
# Usage: tools/ingest_smoke.sh [lines] [workdir]
#   lines   corpus address lines (default 5000000, ~1/5 distinct)
#   workdir scratch directory (default: a fresh temp dir)
#   INGEST_RSS_MAX_KB  peak-RSS ceiling for the streaming analyze
#                      (default 786432 = 768 MiB)
set -euo pipefail

lines="${1:-5000000}"
work="${2:-$(mktemp -d /tmp/eip_ingest_smoke.XXXXXX)}"
rss_max_kb="${INGEST_RSS_MAX_KB:-786432}"
mkdir -p "$work"
echo "ingest_smoke: working in $work ($lines corpus lines)"

eip="target/release/eip"
repro="target/release/repro"
if [[ ! -x "$eip" || ! -x "$repro" ]]; then
    cargo build --release -p repro
fi

"$repro" --corpus-out "$work/corpus.txt" --candidates "$lines"
wc -c "$work/corpus.txt"

# Streaming analyze (default 4 MiB chunks), peak RSS captured. GNU
# time lives at /usr/bin/time; fall back to bash's keyword-less run
# (skipping the RSS assertion) if it is missing.
if [[ -x /usr/bin/time ]]; then
    /usr/bin/time -v "$eip" analyze "$work/corpus.txt" --jobs 4 \
        --model-out "$work/stream.eipm" \
        > "$work/stream.out" 2> "$work/stream.time"
    grep "ingested" "$work/stream.time" || true
    rss_kb="$(awk '/Maximum resident set size/ {print $NF}' "$work/stream.time")"
    echo "ingest_smoke: streaming peak RSS ${rss_kb} kB (ceiling ${rss_max_kb} kB)"
    if [[ -z "$rss_kb" || "$rss_kb" -gt "$rss_max_kb" ]]; then
        echo "ingest_smoke: streaming analyze exceeded the RSS ceiling" >&2
        exit 1
    fi
else
    echo "ingest_smoke: /usr/bin/time missing, skipping RSS assertion"
    "$eip" analyze "$work/corpus.txt" --jobs 4 \
        --model-out "$work/stream.eipm" > "$work/stream.out"
fi

# Serial oracle analyze over the same file.
"$eip" analyze "$work/corpus.txt" --chunk-mb 0 --jobs 4 \
    --model-out "$work/serial.eipm" > "$work/serial.out"

# The whole point: identical analysis and identical persisted model,
# byte for byte.
diff -u "$work/serial.out" "$work/stream.out" \
    || { echo "ingest_smoke: analyze stdout drifted between serial and streaming" >&2; exit 1; }
cmp "$work/serial.eipm" "$work/stream.eipm" \
    || { echo "ingest_smoke: persisted .eipm containers differ" >&2; exit 1; }
echo "ingest_smoke: streaming and serial models byte-identical"

# A second streaming pass at a deliberately awkward chunk size must
# also match (chunk boundaries land mid-line all over the file).
"$eip" analyze "$work/corpus.txt" --chunk-mb 1 --jobs 7 \
    --model-out "$work/chunk1.eipm" > /dev/null
cmp "$work/serial.eipm" "$work/chunk1.eipm" \
    || { echo "ingest_smoke: 1 MiB-chunk model drifted" >&2; exit 1; }
echo "ingest_smoke: 1 MiB-chunk / 7-worker model byte-identical"

rm -rf "$work"
echo "ingest_smoke: OK"
