//! Offline, API-compatible subset of the `rand 0.8` crate.
//!
//! The build environment for this workspace has no crates.io access,
//! so this shim provides the exact slice of the `rand` API the
//! workspace uses — [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng`] (`seed_from_u64`), [`rngs::StdRng`] and
//! [`thread_rng`] — with the same names and signatures. Swapping in
//! the real crate is a one-line `Cargo.toml` change.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256** seeded via
//! SplitMix64 (Blackman & Vigna), which is deterministic, fast and of
//! good statistical quality; it is *not* stream-compatible with
//! upstream `rand`'s ChaCha12-based `StdRng`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns a uniformly random value of type `T`.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Returns a value uniformly distributed in `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        sample_f64_unit(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled from, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a `f64` uniformly from `[0, 1)` using the top 53 bits.
fn sample_f64_unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn next_u128<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
    (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
}

/// Uniform draw from `0..=span` (inclusive) without modulo bias.
fn uniform_u128_inclusive<R: RngCore + ?Sized>(span: u128, rng: &mut R) -> u128 {
    if span == u128::MAX {
        return next_u128(rng);
    }
    let bound = span + 1;
    // Rejection sampling: accept v only below the largest multiple of
    // `bound` that fits in 2^128, so `v % bound` is unbiased.
    let zone = u128::MAX - (u128::MAX % bound + 1) % bound;
    loop {
        let v = next_u128(rng);
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start - 1) as u128;
                self.start + uniform_u128_inclusive(span, rng) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u128;
                lo + uniform_u128_inclusive(span, rng) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_signed_ranges {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) - 1;
                self.start.wrapping_add(uniform_u128_inclusive(span as u128, rng) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u);
                lo.wrapping_add(uniform_u128_inclusive(span as u128, rng) as $t)
            }
        }
    )*};
}

impl_signed_ranges!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        // For tiny spans `start + span * u` can round up to exactly
        // `end`; nudge back to preserve the half-open contract.
        let v = self.start + (self.end - self.start) * sample_f64_unit(rng);
        if v < self.end {
            v
        } else {
            f64::max(self.start, prev_down(self.end))
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + (self.end - self.start) * sample_f64_unit(rng) as f32;
        if v < self.end {
            v
        } else {
            f32::max(self.start, prev_down_f32(self.end))
        }
    }
}

/// Largest f64 strictly below finite `x`.
fn prev_down(x: f64) -> f64 {
    if x == 0.0 {
        -f64::MIN_POSITIVE
    } else if x > 0.0 {
        f64::from_bits(x.to_bits() - 1)
    } else {
        f64::from_bits(x.to_bits() + 1)
    }
}

/// Largest f32 strictly below finite `x`.
fn prev_down_f32(x: f32) -> f32 {
    if x == 0.0 {
        -f32::MIN_POSITIVE
    } else if x > 0.0 {
        f32::from_bits(x.to_bits() - 1)
    } else {
        f32::from_bits(x.to_bits() + 1)
    }
}

/// Construction of seeded generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Distribution types, mirroring the `rand::distributions` module.
pub mod distributions {
    use super::{next_u128, sample_f64_unit, RngCore};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The uniform "every bit pattern equally likely" distribution
    /// (for floats: uniform on `[0, 1)`).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    next_u128(rng) as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            sample_f64_unit(rng)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            // 24 mantissa bits directly, so the result stays in [0, 1)
            // (casting a [0, 1) f64 down can round to exactly 1.0).
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }
}

/// Concrete generators, mirroring the `rand::rngs` module.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64. Not stream-compatible with upstream
    /// `rand::rngs::StdRng`, but deterministic and statistically solid.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 to spread the seed over the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// A lazily seeded per-call generator backing [`super::thread_rng`].
    #[derive(Clone, Debug)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Returns a non-deterministically seeded generator (time + counter).
pub fn thread_rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    rngs::ThreadRng(SeedableRng::seed_from_u64(nanos ^ n.rotate_left(32)))
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::StdRng;
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u128>(), b.gen::<u128>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u128 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=3);
            assert!(w <= 3);
            let f: f64 = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} far from 10k"
            );
        }
    }

    #[test]
    fn f64_range_stays_half_open_on_tiny_spans() {
        // One-ULP span: naive `start + span * u` rounds up to `end`
        // about half the time; the contract requires v < end.
        let mut rng = StdRng::seed_from_u64(11);
        let (lo, hi) = (1.0f64, 1.0 + f64::EPSILON);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(lo..hi);
            assert!(v >= lo && v < hi, "{v} escaped [{lo}, {hi})");
        }
        let mut one32 = 0usize;
        for _ in 0..100_000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            one32 += usize::from(f >= 0.999);
        }
        assert!(one32 < 1000, "f32 unit draws should rarely be near 1");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits));
    }
}
