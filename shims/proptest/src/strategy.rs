//! The [`Strategy`] trait and the combinators the workspace uses.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `f`, re-drawing otherwise.
    ///
    /// Panics after 1000 consecutive rejections (the real crate
    /// reports a similar "too many local rejects" error).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}': too many consecutive rejects",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_unsigned_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end - self.start - 1) as u128;
                self.start + rng.below_inclusive(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range is empty");
                lo + rng.below_inclusive((hi - lo) as u128) as $t
            }
        }
    )*};
}

impl_unsigned_range_strategies!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_signed_range_strategies {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as $u).wrapping_sub(self.start as $u) - 1;
                self.start.wrapping_add(rng.below_inclusive(span as u128) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range is empty");
                let span = (hi as $u).wrapping_sub(lo as $u);
                lo.wrapping_add(rng.below_inclusive(span as u128) as $t)
            }
        }
    )*};
}

impl_signed_range_strategies!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy range is empty");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "strategy range is empty");
        lo + (hi - lo) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategies {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}
