//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim
//! implements the slice of proptest the workspace's five property
//! suites use: the [`proptest!`] macro, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!`, [`arbitrary::any`], integer and
//! float range strategies, tuple strategies,
//! [`prop_map`](strategy::Strategy::prop_map),
//! [`fn@collection::vec`] / [`collection::btree_map`], and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the test name, case
//!   index and derived seed. Generation is deterministic per test
//!   name, so every failure reproduces exactly on re-run.
//! * Case count defaults to 64 (CI-friendly on one core); override
//!   per block with `#![proptest_config(ProptestConfig::with_cases(n))]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Runs one `proptest!`-generated test: repeatedly samples inputs and
/// executes the case body until `config.cases` cases pass.
///
/// Not part of the public proptest API — the [`proptest!`] macro
/// expands to calls of this function.
pub fn run_proptest<F>(name: &str, config: &test_runner::ProptestConfig, mut case: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    // FNV-1a over the test name: deterministic across runs and
    // processes so failures are reproducible.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(16).max(1024);
    let mut case_idx = 0u64;
    while passed < config.cases {
        let seed = h ^ case_idx.wrapping_mul(0x9e3779b97f4a7c15);
        let mut rng = test_runner::TestRng::from_seed(seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(test_runner::TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest '{name}': too many rejected cases \
                         ({rejected} rejects for {passed} passes) — \
                         prop_assume! condition is too strict"
                    );
                }
            }
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{name}' failed at case {case_idx} (seed {seed:#x}):\n{msg}\n\
                     (no shrinking in the offline shim; the seed above reproduces the case)"
                );
            }
        }
        case_idx += 1;
    }
}

/// The proptest entry-point macro: a block of `#[test]` functions whose
/// arguments are drawn from strategies.
///
/// In real code each function carries a `#[test]` attribute (re-emitted
/// onto the generated zero-argument function); the doc example omits it
/// and calls the generated function directly so the example itself runs:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal helper for [`proptest!`]: expands each test item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::run_proptest(stringify!($name), &config, |__rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                #[allow(unused_mut)]
                let mut __case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a proptest case, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two values are equal inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts two values are unequal inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (it is re-drawn, not counted as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}
