//! `any::<T>()` and the [`Arbitrary`] trait.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value, with mild biasing toward boundary
    /// values (zero, max, small integers) like the real crate.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Any<T> {}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // 1-in-8 cases draw from the boundary set so edge
                // conditions (zero, max, off-by-one) get exercised.
                if rng.next_u64() % 8 == 0 {
                    const EDGES: [u128; 6] = [0, 1, 2, 3, <$t>::MAX as u128, <$t>::MAX as u128 - 1];
                    EDGES[(rng.next_u64() % 6) as usize] as $t
                } else {
                    rng.next_u128() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                if rng.next_u64() % 8 == 0 {
                    const EDGES: [i128; 6] =
                        [0, 1, -1, <$t>::MAX as i128, <$t>::MIN as i128, <$t>::MIN as i128 + 1];
                    EDGES[(rng.next_u64() % 6) as usize] as $t
                } else {
                    rng.next_u128() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite doubles spanning many magnitudes; no NaN/inf (the
        // real crate gates those behind flags the workspace never
        // enables).
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = (rng.next_u64() % 61) as i32 - 30;
        mantissa * (2f64).powi(exp)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('\u{FFFD}')
    }
}
