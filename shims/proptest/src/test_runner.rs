//! Test-runner types: configuration, the per-case RNG, and case errors.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-block configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the five suites
        // fast on the single-core CI this workspace targets.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message explains what.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject(&'static str),
}

/// The deterministic RNG handed to strategies for one case.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates a case RNG from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Returns the next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Returns the next raw 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Uniform draw from `0..=span` without modulo bias.
    pub fn below_inclusive(&mut self, span: u128) -> u128 {
        use rand::Rng;
        if span == u128::MAX {
            return self.next_u128();
        }
        self.inner.gen_range(0..=span)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
