//! Collection strategies, mirroring `proptest::collection`.

use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification for generated collections, mirroring
/// `proptest::collection::SizeRange`.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below_inclusive((self.hi - self.lo) as u128) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with sizes drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`fn@vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K, V>` with sizes drawn from `size`.
///
/// Like the real crate, the generator retries on duplicate keys; if
/// the key space is too small to reach the requested size the map is
/// returned at its attainable size.
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// See [`btree_map`].
#[derive(Clone, Debug)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        let mut out = BTreeMap::new();
        let mut attempts = 0usize;
        while out.len() < n && attempts < n * 10 + 100 {
            out.insert(self.key.sample(rng), self.value.sample(rng));
            attempts += 1;
        }
        out
    }
}
