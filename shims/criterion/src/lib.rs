//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no crates.io access, so this shim
//! implements the slice of the criterion API the workspace's four
//! bench targets use. Instead of criterion's full statistical
//! machinery it runs a fixed-budget timing loop (~100 ms or
//! `sample_size` iterations per benchmark, whichever is smaller) and
//! prints `name: mean ns/iter over N iters` to stdout, so
//! `cargo bench` finishes in seconds and still catches regressions at
//! order-of-magnitude granularity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Soft per-benchmark time budget for the measurement loop.
const TIME_BUDGET: Duration = Duration::from_millis(100);

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim's budget is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Display,
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, D, F>(&mut self, id: I, input: &D, mut f: F) -> &mut Self
    where
        I: Display,
        F: FnMut(&mut Bencher, &D),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (printing is already done per-benchmark).
    pub fn finish(self) {}
}

/// A benchmark name with an optional parameter, mirroring
/// `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// The per-benchmark timing handle, mirroring `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    max_iters: usize,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated runs of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up run, which also sizes the loop.
        let warm = Instant::now();
        black_box(routine());
        let once = warm.elapsed();
        let budget_iters = if once.is_zero() {
            self.max_iters
        } else {
            (TIME_BUDGET.as_nanos() / once.as_nanos()).clamp(1, self.max_iters as u128) as usize
        };
        let start = Instant::now();
        for _ in 0..budget_iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = budget_iters as u64;
    }
}

/// An identity function that hides a value from the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        max_iters: sample_size.max(1),
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("bench {name}: routine never called b.iter()");
        return;
    }
    let per_iter = b.elapsed.as_nanos() / u128::from(b.iters);
    println!("bench {name}: {per_iter} ns/iter (n = {})", b.iters);
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench-target `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test`/`cargo bench` cargo may pass harness
            // flags (`--test`, `--bench`); the shim runs the same
            // quick loop either way, so they are ignored.
            $($group();)+
        }
    };
}
